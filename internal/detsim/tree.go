package detsim

// tree.go extends the deterministic harness from one supervisor cell to
// a full depth-4 tree: a real cmsd.Core per redirector (manager →
// supervisor → supervisor), thousands of simulated data servers at the
// leaves, one discrete-event scheduler and one seeded RNG owning every
// nondeterministic choice, exactly as in the flat harness (sim.go).
//
// The structural differences from the flat harness:
//
//   - Resolutions exist at every level. A client operation is a walk:
//     resolve at the root, follow the redirect to a child supervisor,
//     resolve there, and so on until a leaf core vectors it at a data
//     server. Each hop is a scheduler event, so hop counts and
//     messages-per-resolve are measured, not assumed.
//   - A Query delivered to a supervisor spawns a query proc: an async
//     resolve on that supervisor's core (exactly node.go's handleQuery),
//     whose outcome — if and only if it is a redirect — travels back up
//     as a Have echoing the parent's QID. Silence otherwise.
//   - The per-core invariants (vector disjointness, flood uniqueness,
//     respq conservation, exactly-once delivery) are checked for every
//     core in the tree, with a per-core parked-proc ledger.
//   - Depth-aware deadlines run through the production path: each
//     core's cmsd.Config.Levels is its redirector height, so the root's
//     processing deadline covers the whole subtree (Section III-C1).
//   - Manager restart is modeled: the root core closes (parked clients
//     get the full-delay wait through the production stop path), a
//     fresh core replaces it, and the child supervisors re-login
//     staggered by slot index over RejoinSpread — the bounded
//     re-subscription storm of node.go's parentLoop.
//
// All RNG and event-heap access happens either on the scheduler
// goroutine or on a resolution goroutine while the scheduler is blocked
// on that goroutine's handshake, so a seed fully determines the run and
// the trace hash is the replay assertion.

import (
	"container/heap"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"scalla/internal/cache"
	"scalla/internal/cluster"
	"scalla/internal/cmsd"
	"scalla/internal/faults"
	"scalla/internal/names"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/vclock"
)

// TreeConfig parameterizes one tree simulation. Zero values default.
type TreeConfig struct {
	// Seed fully determines the run.
	Seed int64

	// Servers is the number of simulated data servers (default 1024,
	// max 16384).
	Servers int
	// Fanout is the maximum children per redirector (default 16, max
	// cluster.MaxMembers). Servers and Fanout together fix the tree
	// depth: 1024 servers at fanout 16 is a depth-4 tree (root → 4
	// supervisors → 64 supervisors → servers).
	Fanout int
	// Clients is the number of concurrent client processes. Default 4.
	Clients int
	// OpsPerClient is how many operations each client performs. Default 3.
	OpsPerClient int
	// Paths sizes the preloaded namespace. Default 6.
	Paths int
	// Slots sizes each core's fast response queue. Default 64.
	Slots int

	// MinLatency and MaxLatency bound one-way frame latency. Defaults
	// 1 ms and 10 ms.
	MinLatency time.Duration
	MaxLatency time.Duration

	// Plan, when active, injects frame faults on every tree link.
	Plan faults.Plan
	// Crashes is how many server crash/restart cycles to schedule.
	Crashes int
	// ManagerRestarts is how many root-core restart cycles to schedule:
	// each closes the root core and re-forms its cell through the
	// staggered re-login storm.
	ManagerRestarts int
	// RestartDelay is how long a crashed server stays down. Default 5 s.
	RestartDelay time.Duration

	// FullDelay is the per-level full delay; each core's effective
	// processing deadline is FullDelay × its redirector height
	// (cmsd.Config.Levels). Default 1 s.
	FullDelay time.Duration
	// Period is the fast-response clock period. Default 133 ms.
	Period time.Duration
	// Lifetime is the location-object lifetime. Default 1 minute.
	Lifetime time.Duration
	// DropDelay is the offline-to-drop grace. Default 30 s.
	DropDelay time.Duration
	// ReconnectDelay is the base redial delay a child waits before
	// re-logging in after the root restarts. Default 200 ms.
	ReconnectDelay time.Duration
	// RejoinSpread bounds the re-login storm after a root restart,
	// staggered by slot index as in cmsd.NodeConfig.RejoinSpread.
	// Default 4× ReconnectDelay.
	RejoinSpread time.Duration

	// MaxOpTime bounds one client operation end to end. Default
	// 12 × FullDelay × depth (a strict-mode deep create pays roughly
	// the triangular sum of the per-level deadlines).
	MaxOpTime time.Duration
	// MaxSimTime bounds the simulated clock. Default 10 minutes.
	MaxSimTime time.Duration

	// CheckEvery runs the full per-core invariant scan every N scheduler
	// steps (always at the end). Default 1; large trees default to 64 so
	// the scan cost does not dominate the run.
	CheckEvery int

	// Debug, when non-nil, receives every trace line.
	Debug io.Writer
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.Servers <= 0 {
		c.Servers = 1024
	}
	if c.Servers > 16384 {
		c.Servers = 16384
	}
	if c.Fanout <= 1 {
		c.Fanout = 16
	}
	if c.Fanout > cluster.MaxMembers {
		c.Fanout = cluster.MaxMembers
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 3
	}
	if c.Paths <= 0 {
		c.Paths = 6
	}
	if c.Slots <= 0 {
		c.Slots = 64
	}
	if c.MinLatency <= 0 {
		c.MinLatency = time.Millisecond
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = 10 * time.Millisecond
	}
	if c.MaxLatency < c.MinLatency {
		c.MaxLatency = c.MinLatency
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 5 * time.Second
	}
	if c.FullDelay <= 0 {
		c.FullDelay = time.Second
	}
	if c.Period <= 0 {
		c.Period = 133 * time.Millisecond
	}
	if c.Lifetime <= 0 {
		c.Lifetime = time.Minute
	}
	if c.DropDelay <= 0 {
		c.DropDelay = 30 * time.Second
	}
	if c.ReconnectDelay <= 0 {
		c.ReconnectDelay = 200 * time.Millisecond
	}
	if c.RejoinSpread == 0 {
		c.RejoinSpread = 4 * c.ReconnectDelay
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 10 * time.Minute
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 1
		if c.Servers >= 512 {
			c.CheckEvery = 64
		}
	}
	return c
}

func (c TreeConfig) strict() bool {
	return !c.Plan.Active() && c.Crashes == 0 && c.ManagerRestarts == 0
}

// TreeResult summarizes one tree run.
type TreeResult struct {
	Seed  int64
	Hash  string // trace digest; the replay assertion
	Steps int    // scheduler steps executed

	Levels  int // redirector levels (3 = depth-4 tree incl. servers)
	Cores   int // redirector cores simulated
	Servers int

	Ops       int // client operations completed
	Redirects int // client redirect outcomes (including interior hops)
	Waits     int
	NoEnts    int
	Retries   int

	Queries int64 // location-query frames sent, all levels
	Haves   int64 // positive responses sent, all levels

	HopP50 int // redirect hops per completed op, median
	HopMax int

	LatP50 time.Duration // simulated end-to-end op latency, median
	LatP99 time.Duration

	Crashed     int
	MgrRestarts int

	// Violations holds every invariant violation, in deterministic
	// order. Empty means the run model-checked clean.
	Violations []string
}

// RunTree executes one tree simulation to completion.
func RunTree(cfg TreeConfig) TreeResult {
	ts := newTreeSim(cfg.withDefaults())
	return ts.run()
}

// ---------------------------------------------------------------------
// Topology.

// tchild is one slot of a redirector's subordinate set: a child
// supervisor or a data server.
type tchild struct {
	sup *tredirector
	srv *tserver
}

// tredirector is one redirector node: a real cmsd.Core plus the tree
// wiring around it.
type tredirector struct {
	id    int // global order for deterministic iteration; 0 = root
	level int // 0 = root
	name  string

	core *cmsd.Core
	gen  uint64 // bumped when the core is replaced (root restart)

	parent *tredirector
	pidx   int  // member index in the parent's table
	joined bool // logged into the parent (false mid restart storm)

	byIndex map[int]*tchild // member index → child
	parked  int             // procs currently parked on this core
}

// tserver is one simulated data server: a real store, no goroutine —
// query handling is an atomic scheduler sub-step.
type tserver struct {
	id     int
	name   string
	leaf   *tredirector
	idx    int // member index in the leaf's table
	online bool
	gen    uint64 // bumped per crash/restart; kills in-flight frames
	st     *store.Store
}

// ---------------------------------------------------------------------
// Procs: one resolution in flight on some core.

const (
	tpIdle = iota
	tpParked
	tpDone
)

const (
	procClient = iota // a client walk step
	procQuery         // a supervisor answering its parent's Query
)

// tproc is one resolution process. Client procs walk the tree; query
// procs live and die on a single core and report upward via Have.
type tproc struct {
	id    int
	kind  int
	state int
	at    *tredirector // core the current resolve runs on

	// Client-walk fields.
	ops          []top
	cur          int
	attempts     int
	hops         int
	opStart      time.Time
	forceRefresh bool // next root attempt carries Refresh (stale walk)

	// Query-proc fields.
	qid    uint64 // parent QID to echo upward
	path   string
	hash   uint32
	write  bool
	parent *tredirector
	egen   uint64 // at's core generation at spawn
	pgen   uint64 // parent's core generation at spawn
}

// top is one client operation.
type top struct {
	kind    string // "read", "create", "write", "refresh"
	path    string
	write   bool
	create  bool
	refresh bool
}

// tdone is one finished resolution, reported back to the scheduler.
type tdone struct {
	p   *tproc
	out cmsd.Outcome
}

// ---------------------------------------------------------------------
// Events.

type tevKind int

const (
	tevClientOp   tevKind = iota // start or retry one client walk step
	tevQuery                     // deliver a Query to a supervisor or server
	tevHave                      // deliver a Have to a redirector
	tevRespqTick                 // fast-response clock, all cores
	tevCacheTick                 // cache window tick, all cores
	tevCrash                     // server crash
	tevRestart                   // server restart
	tevDrop                      // drop-delay lapse for an offline slot
	tevMgrRestart                // root core restart
	tevLogin                     // child supervisor (re-)login to the root
)

type tevent struct {
	due  time.Time
	seq  uint64
	kind tevKind

	p     *tproc
	toR   *tredirector
	toSrv *tserver
	fromR *tredirector
	q     proto.Query
	have  proto.Have
	hIdx  int    // member index the Have claims to come from
	egen  uint64 // receiving core generation at send time
	sgen  uint64 // server connection generation at send time
	idx   int    // table index for tevDrop
	dgen  uint64 // cluster generation for tevDrop
}

type tevHeapT []*tevent

func (h tevHeapT) Len() int { return len(h) }
func (h tevHeapT) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h tevHeapT) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tevHeapT) Push(x any)   { *h = append(*h, x.(*tevent)) }
func (h *tevHeapT) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// ---------------------------------------------------------------------
// The simulation.

// TreeSim is one running tree simulation. All fields are owned by the
// scheduler goroutine; resolution goroutines touch shared state only
// while the scheduler is blocked on their handshake.
type TreeSim struct {
	cfg   TreeConfig
	rng   *rand.Rand
	clk   *vclock.Fake
	epoch time.Time

	levels  int // redirector levels
	root    *tredirector
	reds    []*tredirector // all redirectors, by id (root first)
	servers []*tserver
	clients []*tproc
	files   map[string]*fileModel
	nextPID int

	eq  tevHeapT
	seq uint64

	awaitCh chan struct{}
	done    chan tdone

	trace *obs.TraceHash
	steps int

	refreshGuard map[string]time.Time // root-core flood-uniqueness exemption
	rootDeadline time.Duration        // FullDelay × levels

	opsLeft    int
	violations []string
	abort      bool
	endTime    time.Time

	opLat  []time.Duration
	opHops []int

	nRedirects, nWaits, nNoEnts, nRetries        int
	nQueries, nHaves                             int64
	nCrashed, nMgrRestarts                       int
}

func newTreeSim(cfg TreeConfig) *TreeSim {
	ts := &TreeSim{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		clk:          vclock.NewFake(),
		files:        make(map[string]*fileModel),
		awaitCh:      make(chan struct{}),
		done:         make(chan tdone, 4096),
		trace:        obs.NewTraceHash(),
		refreshGuard: make(map[string]time.Time),
	}
	ts.epoch = ts.clk.Now()
	ts.endTime = ts.epoch.Add(cfg.MaxSimTime)
	ts.buildTree()
	ts.rootDeadline = cfg.FullDelay * time.Duration(ts.levels)
	if ts.cfg.MaxOpTime <= 0 {
		ts.cfg.MaxOpTime = 12 * cfg.FullDelay * time.Duration(ts.levels)
	}
	ts.tracef("tree init seed=%d servers=%d fanout=%d levels=%d cores=%d clients=%d ops=%d paths=%d faults=%v crashes=%d mgrRestarts=%d",
		cfg.Seed, cfg.Servers, cfg.Fanout, ts.levels, len(ts.reds),
		cfg.Clients, cfg.OpsPerClient, cfg.Paths, cfg.Plan.Active(),
		cfg.Crashes, cfg.ManagerRestarts)
	ts.preload()
	ts.buildClients()
	ts.scheduleBackground()
	return ts
}

// newTreeCore builds one redirector core at the given height (1 = leaf
// supervisor) and installs its query sender.
func (ts *TreeSim) newTreeCore(r *tredirector, height int) *cmsd.Core {
	core := cmsd.NewCore(cmsd.Config{
		Manual:    true,
		OnAwait:   func() { ts.awaitCh <- struct{}{} },
		FullDelay: ts.cfg.FullDelay,
		Levels:    height,
		Clock:     ts.clk,
		Cache: cache.Config{
			Lifetime:       ts.cfg.Lifetime,
			Shards:         4,
			InitialBuckets: 64,
			SyncSweep:      true,
		},
		Queue:   respq.Config{Slots: ts.cfg.Slots, Period: ts.cfg.Period},
		Cluster: cluster.Config{DropDelay: ts.cfg.DropDelay, Capacity: ts.cfg.Fanout},
	})
	gen := r.gen
	sender := cmsd.QuerySender(func(index int, q proto.Query) bool {
		return ts.sendTreeQuery(r, gen, index, q)
	})
	core.SetQuerySender(sender)
	return core
}

// buildTree constructs the redirector levels (widths computed bottom-up
// exactly like StartCluster) and logs every node into its parent.
func (ts *TreeSim) buildTree() {
	var widths []int
	for n := ts.cfg.Servers; n > ts.cfg.Fanout; {
		n = (n + ts.cfg.Fanout - 1) / ts.cfg.Fanout
		widths = append([]int{n}, widths...)
	}
	ts.levels = len(widths) + 1

	ts.root = &tredirector{id: 0, name: "root", pidx: -1, byIndex: make(map[int]*tchild)}
	ts.root.core = ts.newTreeCore(ts.root, ts.levels)
	ts.reds = []*tredirector{ts.root}

	parents := []*tredirector{ts.root}
	for li, w := range widths {
		level := li + 1
		next := make([]*tredirector, 0, w)
		for i := 0; i < w; i++ {
			r := &tredirector{
				id:      len(ts.reds),
				level:   level,
				name:    fmt.Sprintf("sup%d-%d", level, i),
				parent:  parents[i%len(parents)],
				byIndex: make(map[int]*tchild),
			}
			r.core = ts.newTreeCore(r, ts.levels-level)
			ts.loginSup(r)
			ts.reds = append(ts.reds, r)
			next = append(next, r)
		}
		parents = next
	}

	for i := 0; i < ts.cfg.Servers; i++ {
		sv := &tserver{
			id:     i,
			name:   fmt.Sprintf("s%d", i),
			leaf:   parents[i%len(parents)],
			online: true,
			st:     store.New(store.Config{Clock: ts.clk}),
		}
		ts.loginServer(sv)
		ts.servers = append(ts.servers, sv)
	}
}

// loginSup registers supervisor r with its parent's table.
func (ts *TreeSim) loginSup(r *tredirector) {
	idx, _, err := r.parent.core.Table().Login(cluster.Member{
		Name:     r.name,
		Role:     proto.RoleSupervisor,
		DataAddr: r.name + ":data",
		CtlAddr:  r.name + ":ctl",
		Prefixes: names.NewPrefixSet("/"),
		Free:     1 << 40,
	})
	if err != nil {
		panic(fmt.Sprintf("detsim tree: login %s: %v", r.name, err))
	}
	r.pidx = idx
	r.joined = true
	r.parent.byIndex[idx] = &tchild{sup: r}
}

// loginServer (re-)registers server sv with its leaf's table and fixes
// the index mapping (a post-drop re-login may land in a new slot).
func (ts *TreeSim) loginServer(sv *tserver) {
	idx, _, err := sv.leaf.core.Table().Login(cluster.Member{
		Name:     sv.name,
		Role:     proto.RoleServer,
		DataAddr: sv.name + ":data",
		Prefixes: names.NewPrefixSet("/"),
		Free:     sv.st.Free(),
	})
	if err != nil {
		panic(fmt.Sprintf("detsim tree: login %s: %v", sv.name, err))
	}
	if old, ok := sv.leaf.byIndex[sv.idx]; ok && old.srv == sv && sv.idx != idx {
		delete(sv.leaf.byIndex, sv.idx)
	}
	sv.idx = idx
	sv.leaf.byIndex[idx] = &tchild{srv: sv}
}

func (ts *TreeSim) preload() {
	for i := 0; i < ts.cfg.Paths; i++ {
		path := fmt.Sprintf("/data/f%02d", i)
		fm := &fileModel{online: make(map[int]bool), mss: make(map[int]bool)}
		ts.files[path] = fm
		if ts.rng.Float64() >= 0.8 {
			continue // a fifth of the namespace does not exist
		}
		fm.exists = true
		holders := ts.rng.Perm(ts.cfg.Servers)[:1+ts.rng.Intn(3)]
		sort.Ints(holders)
		for _, h := range holders {
			if err := ts.servers[h].st.Put(path, fileContent(path)); err != nil {
				panic(err)
			}
			fm.online[h] = true
		}
	}
}

func (ts *TreeSim) buildClients() {
	for c := 0; c < ts.cfg.Clients; c++ {
		p := &tproc{id: ts.nextPID, kind: procClient, at: ts.root}
		ts.nextPID++
		for k := 0; k < ts.cfg.OpsPerClient; k++ {
			p.ops = append(p.ops, ts.drawTreeOp(c, k))
		}
		ts.clients = append(ts.clients, p)
		ts.opsLeft += len(p.ops)
		ts.schedule(ts.epoch.Add(ts.tjitter(50*time.Millisecond)),
			&tevent{kind: tevClientOp, p: p})
	}
}

func (ts *TreeSim) drawTreeOp(client, k int) top {
	r := ts.rng.Float64()
	switch {
	case r < 0.55:
		return top{kind: "read", path: ts.somePathT()}
	case r < 0.70:
		return top{kind: "create", path: fmt.Sprintf("/new/c%d-n%d", client, k),
			write: true, create: true}
	case r < 0.85:
		return top{kind: "write", path: ts.somePathT(), write: true}
	default:
		return top{kind: "refresh", path: ts.somePathT(), refresh: true}
	}
}

func (ts *TreeSim) somePathT() string {
	return fmt.Sprintf("/data/f%02d", ts.rng.Intn(ts.cfg.Paths))
}

func (ts *TreeSim) scheduleBackground() {
	ts.schedule(ts.epoch.Add(ts.cfg.Period), &tevent{kind: tevRespqTick})
	ts.schedule(ts.epoch.Add(ts.cfg.Lifetime/64), &tevent{kind: tevCacheTick})
	for k := 0; k < ts.cfg.Crashes; k++ {
		sv := ts.servers[ts.rng.Intn(ts.cfg.Servers)]
		at := ts.epoch.Add(500*time.Millisecond + ts.tjitter(10*time.Second))
		ts.schedule(at, &tevent{kind: tevCrash, toSrv: sv})
		ts.schedule(at.Add(ts.cfg.RestartDelay), &tevent{kind: tevRestart, toSrv: sv})
	}
	for k := 0; k < ts.cfg.ManagerRestarts; k++ {
		at := ts.epoch.Add(time.Second + ts.tjitter(10*time.Second))
		ts.schedule(at, &tevent{kind: tevMgrRestart})
	}
}

// run is the scheduler loop.
func (ts *TreeSim) run() TreeResult {
	for len(ts.eq) > 0 && !ts.abort {
		ev := heap.Pop(&ts.eq).(*tevent)
		if ev.due.After(ts.endTime) {
			ts.tracef("tree: time limit reached")
			break
		}
		ts.clk.AdvanceTo(ev.due)
		ts.steps++
		ts.texec(ev)
		if ts.steps%ts.cfg.CheckEvery == 0 {
			ts.checkTreeInvariants()
		}
	}
	ts.checkTreeInvariants()
	return ts.finishTree()
}

func (ts *TreeSim) texec(ev *tevent) {
	switch ev.kind {
	case tevClientOp:
		ts.stepClientWalk(ev.p)
	case tevQuery:
		if ev.toSrv != nil {
			ts.deliverServerQuery(ev)
		} else {
			ts.deliverSupQuery(ev)
		}
	case tevHave:
		ts.deliverTreeHave(ev)
	case tevRespqTick:
		for _, r := range ts.reds {
			before := ts.ledger(r)
			if n := r.core.Queue().ExpireNow(); n > 0 {
				ts.tracef("t=%d respq expire %s waiters=%d", ts.tus(), r.name, n)
			}
			ts.collectTreeReleased(r, before)
			if ts.abort {
				return
			}
		}
		if ts.opsLeft > 0 {
			ts.schedule(ts.clk.Now().Add(ts.cfg.Period), &tevent{kind: tevRespqTick})
		}
	case tevCacheTick:
		for _, r := range ts.reds {
			r.core.Cache().Tick()
		}
		if ts.opsLeft > 0 {
			ts.schedule(ts.clk.Now().Add(ts.cfg.Lifetime/64), &tevent{kind: tevCacheTick})
		}
	case tevCrash:
		ts.crashServer(ev.toSrv)
	case tevRestart:
		ts.restartServer(ev.toSrv)
	case tevDrop:
		ts.tracef("t=%d drop-delay lapsed %s idx=%d gen=%d", ts.tus(), ev.toR.name, ev.idx, ev.dgen)
		ev.toR.core.Table().MaybeDrop(ev.idx, ev.dgen)
	case tevMgrRestart:
		ts.restartManager()
	case tevLogin:
		ts.execLogin(ev)
	}
}

// ---------------------------------------------------------------------
// Query transmission and delivery.

// sendTreeQuery is the QuerySender for redirector r: it validates the
// link and schedules the delivery event after a latency/fault draw. It
// runs either on the scheduler goroutine (refloods) or on a resolving
// goroutine while the scheduler is blocked on its handshake.
func (ts *TreeSim) sendTreeQuery(r *tredirector, gen uint64, index int, q proto.Query) bool {
	if gen != r.gen {
		return false // a replaced core's flood; the link died with it
	}
	c := r.byIndex[index]
	if c == nil {
		return false
	}
	if c.sup != nil {
		if !c.sup.joined {
			return false
		}
		ts.nQueries++
		ts.enqueueTree(&tevent{kind: tevQuery, toR: c.sup, fromR: r, q: q, egen: r.gen})
		return true
	}
	if !c.srv.online {
		return false
	}
	ts.nQueries++
	ts.enqueueTree(&tevent{kind: tevQuery, toSrv: c.srv, fromR: r, q: q, egen: r.gen, sgen: c.srv.gen})
	return true
}

// enqueueTree applies the fault plan and a latency draw, then schedules
// the delivery.
func (ts *TreeSim) enqueueTree(ev *tevent) {
	dec, extra := faults.PassThrough, time.Duration(0)
	if ts.cfg.Plan.Active() {
		dec, extra = ts.cfg.Plan.Decide(ts.rng)
	}
	switch dec {
	case faults.DropFrame:
		ts.tracef("t=%d fault drop kind=%d", ts.tus(), ev.kind)
		return
	case faults.DupFrame:
		ts.tracef("t=%d fault dup kind=%d", ts.tus(), ev.kind)
		dup := *ev
		ts.schedule(ts.clk.Now().Add(ts.tlatency()), ev)
		ts.schedule(ts.clk.Now().Add(ts.tlatency()), &dup)
		return
	case faults.DelayFrame:
		ts.tracef("t=%d fault delay kind=%d by=%dus", ts.tus(), ev.kind, extra.Microseconds())
		ts.schedule(ts.clk.Now().Add(ts.tlatency()+extra), ev)
		return
	case faults.ReorderFrame:
		ts.tracef("t=%d fault reorder kind=%d", ts.tus(), ev.kind)
		ts.schedule(ts.clk.Now().Add(ts.tlatency()+ts.tlatency()), ev)
		return
	}
	ts.schedule(ts.clk.Now().Add(ts.tlatency()), ev)
}

// deliverServerQuery answers a Query at a data server synchronously: an
// online copy schedules the Have back up; silence otherwise. (The tree
// harness keeps all preloaded copies online — the flat harness owns the
// staging/Vp schedule.)
func (ts *TreeSim) deliverServerQuery(ev *tevent) {
	sv := ev.toSrv
	if ev.egen != sv.leaf.gen || ev.sgen != sv.gen || !sv.online {
		ts.tracef("t=%d query qid=%d -> %s dropped (conn gone)", ts.tus(), ev.q.QID, sv.name)
		return
	}
	ts.tracef("t=%d query qid=%d -> %s", ts.tus(), ev.q.QID, sv.name)
	if sv.st.HasOnline(ev.q.Path) {
		ts.nHaves++
		ts.enqueueTree(&tevent{
			kind: tevHave, toR: sv.leaf, hIdx: sv.idx,
			have: proto.Have{QID: ev.q.QID, Path: ev.q.Path, Hash: ev.q.Hash, CanWrite: true},
			egen: sv.leaf.gen, sgen: sv.gen,
		})
	}
}

// deliverSupQuery spawns a query proc on the target supervisor's core —
// the discrete-event twin of node.go handleQuery's async resolve.
func (ts *TreeSim) deliverSupQuery(ev *tevent) {
	r := ev.toR
	if ev.egen != ev.fromR.gen || !r.joined {
		ts.tracef("t=%d query qid=%d -> %s dropped (link gone)", ts.tus(), ev.q.QID, r.name)
		return
	}
	ts.tracef("t=%d query qid=%d -> %s", ts.tus(), ev.q.QID, r.name)
	p := &tproc{
		id: ts.nextPID, kind: procQuery, at: r,
		qid: ev.q.QID, path: ev.q.Path, hash: ev.q.Hash, write: ev.q.Write,
		parent: ev.fromR, egen: r.gen, pgen: ev.fromR.gen,
	}
	ts.nextPID++
	ts.stepTreeProc(p, cmsd.Request{Path: ev.q.Path, Write: ev.q.Write})
}

// deliverTreeHave hands a Have to redirector r and absorbs every
// completion it released before the next scheduler decision.
func (ts *TreeSim) deliverTreeHave(ev *tevent) {
	r := ev.toR
	if ev.egen != r.gen {
		ts.tracef("t=%d have qid=%d -> %s dropped (core gone)", ts.tus(), ev.have.QID, r.name)
		return
	}
	before := ts.ledger(r)
	n := r.core.HandleHave(ev.hIdx, ev.have)
	ts.tracef("t=%d have qid=%d -> %s idx=%d path=%s pending=%v released=%d",
		ts.tus(), ev.have.QID, r.name, ev.hIdx, ev.have.Path, ev.have.Pending, n)
	ts.collectTreeReleased(r, before)
}

// ---------------------------------------------------------------------
// Proc stepping and exactly-once collection.

// ledger returns core r's cumulative delivered-waiter count.
func (ts *TreeSim) ledger(r *tredirector) int64 {
	st := r.core.Queue().Stats()
	return st.ReleasedWaiters + st.ExpiredWaiters
}

// stepTreeProc runs one resolution attempt for p on core p.at, blocking
// until it parks (OnAwait handshake) or completes, then absorbs every
// completion the step released.
func (ts *TreeSim) stepTreeProc(p *tproc, req cmsd.Request) {
	r := p.at
	before := ts.ledger(r)
	go func() { ts.done <- tdone{p, r.core.Resolve(req)} }()

	var own *tdone
	var strays []tdone
	parkedHere := false
	wedge := time.After(wedgeTimeout)
	for own == nil && !parkedHere {
		select {
		case <-ts.awaitCh:
			parkedHere = true
		case d := <-ts.done:
			if d.p == p {
				dd := d
				own = &dd
			} else {
				strays = append(strays, d)
			}
		case <-wedge:
			ts.tviolate("proc %d resolution wedged on %s at %s", p.id, req.Path, r.name)
			ts.abort = true
			return
		}
	}
	if parkedHere {
		if len(strays) != 0 {
			ts.tviolate("proc %d parked at %s but %d completions appeared mid-step",
				p.id, r.name, len(strays))
		}
		p.state = tpParked
		r.parked++
		ts.tracef("t=%d p%d parked at %s", ts.tus(), p.id, r.name)
		return
	}

	expect := int(ts.ledger(r) - before)
	for len(strays) < expect {
		select {
		case d := <-ts.done:
			strays = append(strays, d)
		case <-time.After(wedgeTimeout):
			ts.tviolate("exactly-once at %s: %d of %d completions released by p%d's step arrived",
				r.name, len(strays), expect, p.id)
			ts.abort = true
			return
		}
	}
	ts.applyOutcome(p, own.out)
	sort.Slice(strays, func(i, j int) bool { return strays[i].p.id < strays[j].p.id })
	for _, d := range strays {
		if d.p.state != tpParked {
			ts.tviolate("completion for proc %d which was not parked", d.p.id)
			continue
		}
		ts.applyOutcome(d.p, d.out)
	}
}

// collectTreeReleased blocks until every completion implied by core r's
// waiter-delivery delta has arrived, then applies them in proc order.
func (ts *TreeSim) collectTreeReleased(r *tredirector, before int64) {
	expect := int(ts.ledger(r) - before)
	if expect == 0 {
		return
	}
	msgs := make([]tdone, 0, expect)
	wedge := time.After(wedgeTimeout)
	for len(msgs) < expect {
		select {
		case d := <-ts.done:
			msgs = append(msgs, d)
		case <-wedge:
			ts.tviolate("exactly-once at %s: %d of %d released completions arrived",
				r.name, len(msgs), expect)
			ts.abort = true
			return
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].p.id < msgs[j].p.id })
	for _, d := range msgs {
		if d.p.state != tpParked {
			ts.tviolate("completion for proc %d which was not parked", d.p.id)
			continue
		}
		ts.applyOutcome(d.p, d.out)
	}
}

// collectExactly absorbs exactly n completions regardless of the respq
// ledger — the root-restart path, where parked procs are released
// through the core's stop channel rather than the fast response queue.
func (ts *TreeSim) collectExactly(n int) {
	msgs := make([]tdone, 0, n)
	wedge := time.After(wedgeTimeout)
	for len(msgs) < n {
		select {
		case d := <-ts.done:
			msgs = append(msgs, d)
		case <-wedge:
			ts.tviolate("root restart: %d of %d parked completions arrived", len(msgs), n)
			ts.abort = true
			return
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].p.id < msgs[j].p.id })
	for _, d := range msgs {
		if d.p.state != tpParked {
			ts.tviolate("restart completion for proc %d which was not parked", d.p.id)
			continue
		}
		ts.applyOutcome(d.p, d.out)
	}
}

// applyOutcome routes one finished resolution: query procs report
// upward, client procs walk.
func (ts *TreeSim) applyOutcome(p *tproc, out cmsd.Outcome) {
	if p.state == tpParked {
		p.at.parked--
	}
	p.state = tpIdle
	if p.kind == procQuery {
		ts.finishQueryProc(p, out)
		return
	}
	ts.finishClientAttempt(p, out)
}

// finishQueryProc implements the supervisor's half of
// request-rarely-respond: a redirect outcome compresses into one Have
// upward (echoing the parent's QID, passing Pending through); every
// other outcome is silence.
func (ts *TreeSim) finishQueryProc(p *tproc, out cmsd.Outcome) {
	p.state = tpDone
	if out.Kind != cmsd.KindRedirect {
		ts.tracef("t=%d p%d %s silent (%d)", ts.tus(), p.id, p.at.name, out.Kind)
		return
	}
	if p.egen != p.at.gen || p.pgen != p.parent.gen || !p.at.joined {
		ts.tracef("t=%d p%d have up dropped (link gone)", ts.tus(), p.id)
		return
	}
	ts.nHaves++
	ts.tracef("t=%d p%d %s have up qid=%d pending=%v", ts.tus(), p.id, p.at.name, p.qid, out.Pending)
	ts.enqueueTree(&tevent{
		kind: tevHave, toR: p.parent, hIdx: p.at.pidx,
		have: proto.Have{QID: p.qid, Path: p.path, Hash: p.hash,
			Pending: out.Pending, CanWrite: true},
		egen: p.parent.gen,
	})
}

// ---------------------------------------------------------------------
// Client walks.

// stepClientWalk runs one attempt of the client's current op at its
// current tree position.
func (ts *TreeSim) stepClientWalk(p *tproc) {
	if p.state != tpIdle || p.cur >= len(p.ops) {
		ts.tviolate("client proc %d stepped in state %d", p.id, p.state)
		return
	}
	o := p.ops[p.cur]
	now := ts.clk.Now()
	if p.attempts == 0 {
		p.opStart = now
		p.at = ts.root
		p.hops = 0
	}
	p.attempts++
	if p.attempts > maxAttempts {
		ts.tviolate("client proc %d livelocked on op %d (%s %s)", p.id, p.cur, o.kind, o.path)
		p.state = tpDone
		ts.opsLeft--
		return
	}
	req := cmsd.Request{Path: o.path, Write: o.write, Create: o.create}
	if p.at == ts.root && ((o.refresh && p.attempts == 1) || p.forceRefresh) {
		req.Refresh = true
		p.forceRefresh = false
		ts.refreshGuard[names.Clean(o.path)] = now.Add(ts.rootDeadline)
	}
	ts.tracef("t=%d c%d %s %s at=%s attempt=%d", ts.tus(), p.id, o.kind, o.path, p.at.name, p.attempts)
	ts.stepTreeProc(p, req)
}

// finishClientAttempt applies one walk-step outcome.
func (ts *TreeSim) finishClientAttempt(p *tproc, out cmsd.Outcome) {
	o := p.ops[p.cur]
	now := ts.clk.Now()
	switch out.Kind {
	case cmsd.KindRetry:
		ts.nRetries++
		ts.tracef("t=%d c%d retry at %s", ts.tus(), p.id, p.at.name)
		ts.schedule(now.Add(time.Millisecond), &tevent{kind: tevClientOp, p: p})
	case cmsd.KindWait:
		ts.nWaits++
		ts.tracef("t=%d c%d wait %dms at %s", ts.tus(), p.id, out.Millis, p.at.name)
		ts.schedule(now.Add(time.Duration(out.Millis)*time.Millisecond),
			&tevent{kind: tevClientOp, p: p})
	case cmsd.KindNoEnt:
		if p.at == ts.root {
			ts.nNoEnts++
			ts.validateTreeNoEnt(p, o)
			ts.completeWalk(p, "noent", "")
			return
		}
		// A stale interior location: the file moved (or never landed)
		// under this subtree. The client's recovery is a refreshed
		// relocate at the manager (Section III-C1).
		ts.tracef("t=%d c%d stale noent at %s, refreshing from root", ts.tus(), p.id, p.at.name)
		p.forceRefresh = true
		p.at = ts.root
		ts.schedule(now.Add(ts.tlatency()), &tevent{kind: tevClientOp, p: p})
	case cmsd.KindRedirect:
		ts.nRedirects++
		c := p.at.byIndex[out.Index]
		if c == nil {
			ts.tviolate("c%d redirected to unknown index %d at %s", p.id, out.Index, p.at.name)
			ts.completeWalk(p, "bad-redirect", "")
			return
		}
		p.hops++
		if c.sup != nil {
			ts.tracef("t=%d c%d hop %s -> %s", ts.tus(), p.id, p.at.name, c.sup.name)
			p.at = c.sup
			ts.schedule(now.Add(ts.tlatency()), &tevent{kind: tevClientOp, p: p})
			return
		}
		ts.validateTreeRedirect(p, o, c.srv)
		ts.completeWalk(p, "redirect", c.srv.name)
	default:
		ts.tviolate("c%d got unknown outcome kind %d", p.id, out.Kind)
		ts.completeWalk(p, "unknown", "")
	}
}

func (ts *TreeSim) completeWalk(p *tproc, how, where string) {
	now := ts.clk.Now()
	took := now.Sub(p.opStart)
	o := p.ops[p.cur]
	ts.tracef("t=%d c%d %s %s done %s %s hops=%d took=%dus attempts=%d",
		ts.tus(), p.id, o.kind, o.path, how, where, p.hops, took.Microseconds(), p.attempts)
	if took > ts.cfg.MaxOpTime {
		ts.tviolate("c%d op %d (%s %s) took %s, past the %s resolution bound",
			p.id, p.cur, o.kind, o.path, took, ts.cfg.MaxOpTime)
	}
	ts.opLat = append(ts.opLat, took)
	ts.opHops = append(ts.opHops, p.hops)
	p.cur++
	p.attempts = 0
	p.forceRefresh = false
	ts.opsLeft--
	if p.cur >= len(p.ops) {
		p.state = tpDone
		return
	}
	ts.schedule(now.Add(ts.tjitter(20*time.Millisecond)), &tevent{kind: tevClientOp, p: p})
}

// validateTreeRedirect checks a final-hop redirect against the ground
// truth: the target server must be online and hold the file, or be the
// landing site of a create.
func (ts *TreeSim) validateTreeRedirect(p *tproc, o top, sv *tserver) {
	if !sv.online {
		ts.tviolate("c%d redirected to offline server %s for %s", p.id, sv.name, o.path)
		return
	}
	fm := ts.files[o.path]
	if o.create && (fm == nil || !fm.exists) {
		if fm == nil {
			fm = &fileModel{online: make(map[int]bool), mss: make(map[int]bool)}
			ts.files[o.path] = fm
		}
		if err := sv.st.Put(o.path, fileContent(o.path)); err != nil {
			ts.tviolate("create install on %s failed: %v", sv.name, err)
			return
		}
		fm.exists = true
		fm.online[sv.id] = true
		return
	}
	if fm == nil || !fm.exists {
		ts.tviolate("c%d redirected to %s for %s which does not exist", p.id, sv.name, o.path)
		return
	}
	if !fm.online[sv.id] {
		ts.tviolate("c%d redirected to %s which does not hold %s", p.id, sv.name, o.path)
	}
}

func (ts *TreeSim) validateTreeNoEnt(p *tproc, o top) {
	if !ts.cfg.strict() {
		return
	}
	if o.create {
		ts.tviolate("c%d create %s returned noent in a strict run", p.id, o.path)
		return
	}
	fm := ts.files[o.path]
	if fm != nil && fm.exists {
		ts.tviolate("c%d got noent for existing file %s in a strict run", p.id, o.path)
	}
}

// ---------------------------------------------------------------------
// Churn and restart.

func (ts *TreeSim) crashServer(sv *tserver) {
	if !sv.online {
		ts.tracef("t=%d crash %s skipped (already down)", ts.tus(), sv.name)
		return
	}
	sv.online = false
	sv.gen++
	ts.nCrashed++
	ts.tracef("t=%d crash %s", ts.tus(), sv.name)
	// DisconnectManual fires OnOffline synchronously → MemberDown
	// refloods on this goroutine, keeping the RNG draws ordered.
	if gen, ok := sv.leaf.core.Table().DisconnectManual(sv.idx); ok {
		ts.schedule(ts.clk.Now().Add(ts.cfg.DropDelay),
			&tevent{kind: tevDrop, toR: sv.leaf, idx: sv.idx, dgen: gen})
	}
}

func (ts *TreeSim) restartServer(sv *tserver) {
	if sv.online {
		ts.tracef("t=%d restart %s skipped (already up)", ts.tus(), sv.name)
		return
	}
	sv.online = true
	sv.gen++
	ts.loginServer(sv)
	ts.tracef("t=%d restart %s idx=%d", ts.tus(), sv.name, sv.idx)
	sv.leaf.core.MemberUp(sv.idx)
}

// restartManager models a head-node process restart: the old root core
// dies (its parked clients surface through the production stop path and
// retry), a fresh core with a fresh connect epoch replaces it, and each
// child supervisor schedules its re-login staggered by old slot index
// over RejoinSpread — node.go parentLoop's bounded re-subscription
// storm, as a deterministic schedule.
func (ts *TreeSim) restartManager() {
	root := ts.root
	ts.nMgrRestarts++
	ts.tracef("t=%d manager restart (parked=%d)", ts.tus(), root.parked)
	root.gen++
	parked := root.parked
	root.core.Close()
	ts.collectExactly(parked)
	if ts.abort {
		return
	}

	root.byIndex = make(map[int]*tchild)
	root.core = ts.newTreeCore(root, ts.levels)

	// Children re-login: first redial after ReconnectDelay, plus the
	// index-proportional jittered spread.
	for _, r := range ts.reds[1:] {
		if r.parent != root {
			continue
		}
		r.joined = false
		spread := time.Duration(float64(ts.cfg.RejoinSpread) *
			(float64(r.pidx) + ts.rng.Float64()) / float64(cluster.MaxMembers))
		at := ts.clk.Now().Add(ts.cfg.ReconnectDelay + spread)
		ts.schedule(at, &tevent{kind: tevLogin, toR: r, egen: root.gen})
	}
}

// execLogin re-registers a child supervisor with the (possibly fresh)
// root core.
func (ts *TreeSim) execLogin(ev *tevent) {
	r := ev.toR
	if ev.egen != ts.root.gen || r.joined {
		ts.tracef("t=%d login %s skipped (stale)", ts.tus(), r.name)
		return
	}
	ts.loginSup(r)
	ts.tracef("t=%d login %s idx=%d", ts.tus(), r.name, r.pidx)
	ts.root.core.MemberUp(r.pidx)
}

// ---------------------------------------------------------------------
// Invariants.

// checkTreeInvariants runs the per-core model checks: vector
// disjointness, flood uniqueness (root refreshes exempted while their
// guard lives), and respq conservation against the per-core parked
// ledger. Exactly-once delivery is enforced structurally by the
// collect* paths.
func (ts *TreeSim) checkTreeInvariants() {
	if ts.abort {
		return
	}
	now := ts.clk.Now()
	for _, r := range ts.reds {
		for _, e := range r.core.Cache().Entries() {
			known := e.Vh.Union(e.Vp)
			if !e.Vq.Intersect(known).IsEmpty() {
				ts.tviolate("cache %s %s: Vq %s intersects Vh|Vp %s", r.name, e.Name, e.Vq, known)
			}
			if !e.Vh.Intersect(e.Vp).IsEmpty() {
				ts.tviolate("cache %s %s: Vh %s intersects Vp %s", r.name, e.Name, e.Vh, e.Vp)
			}
		}
		livePaths := make(map[string]uint64)
		for _, f := range r.core.InflightFloods() {
			if now.After(f.Deadline) {
				continue
			}
			if first, dup := livePaths[f.Path]; dup {
				if r == ts.root {
					if g, ok := ts.refreshGuard[f.Path]; ok && !now.After(g) {
						continue
					}
				}
				ts.tviolate("%s: two live floods for %s (qid %d and %d)", r.name, f.Path, first, f.QID)
				continue
			}
			livePaths[f.Path] = f.QID
		}
		st := r.core.Queue().Stats()
		if st.Entries != st.Released+st.Expired+int64(st.InUse) {
			ts.tviolate("%s respq entry leak: %d entries != %d released + %d expired + %d in use",
				r.name, st.Entries, st.Released, st.Expired, st.InUse)
		}
		if st.Entries+st.Joins != st.ReleasedWaiters+st.ExpiredWaiters+int64(r.parked) {
			ts.tviolate("%s respq waiter leak: %d registered != %d released + %d expired + %d parked",
				r.name, st.Entries+st.Joins, st.ReleasedWaiters, st.ExpiredWaiters, r.parked)
		}
	}
}

// ---------------------------------------------------------------------
// Plumbing.

func (ts *TreeSim) tlatency() time.Duration {
	span := int64(ts.cfg.MaxLatency - ts.cfg.MinLatency)
	if span <= 0 {
		return ts.cfg.MinLatency
	}
	return ts.cfg.MinLatency + time.Duration(ts.rng.Int63n(span+1))
}

func (ts *TreeSim) tjitter(max time.Duration) time.Duration {
	return time.Duration(ts.rng.Int63n(int64(max)))
}

func (ts *TreeSim) schedule(due time.Time, ev *tevent) {
	ev.due = due
	ev.seq = ts.seq
	ts.seq++
	heap.Push(&ts.eq, ev)
}

func (ts *TreeSim) tus() int64 { return ts.clk.Now().Sub(ts.epoch).Microseconds() }

func (ts *TreeSim) tracef(format string, args ...any) {
	ts.trace.Addf(format, args...)
	if ts.cfg.Debug != nil {
		fmt.Fprintf(ts.cfg.Debug, format+"\n", args...)
	}
}

func (ts *TreeSim) tviolate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	ts.violations = append(ts.violations, msg)
	ts.tracef("VIOLATION: %s", msg)
	if len(ts.violations) >= 8 {
		ts.abort = true
	}
}

// pctOf returns the p-th percentile of a sorted duration slice.
func pctOf(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func (ts *TreeSim) finishTree() TreeResult {
	for _, p := range ts.clients {
		if p.cur < len(p.ops) && !ts.abort {
			o := p.ops[p.cur]
			ts.tviolate("client proc %d stalled: op %d (%s %s) never resolved",
				p.id, p.cur, o.kind, o.path)
		}
	}
	ts.tracef("final steps=%d redirects=%d waits=%d noents=%d retries=%d queries=%d haves=%d crashed=%d mgrRestarts=%d",
		ts.steps, ts.nRedirects, ts.nWaits, ts.nNoEnts, ts.nRetries,
		ts.nQueries, ts.nHaves, ts.nCrashed, ts.nMgrRestarts)

	// Tear down: close every core (parked resolutions drain into the
	// done buffer through the stop path) and absorb the leftovers so no
	// goroutine outlives the run.
	totalParked := 0
	for _, r := range ts.reds {
		totalParked += r.parked
		r.core.Close()
	}
	drain := time.After(wedgeTimeout)
	for k := 0; k < totalParked; k++ {
		select {
		case <-ts.done:
		case <-drain:
			k = totalParked
		}
	}

	lat := append([]time.Duration(nil), ts.opLat...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	hops := append([]int(nil), ts.opHops...)
	sort.Ints(hops)
	hopP50, hopMax := 0, 0
	if len(hops) > 0 {
		hopP50 = hops[len(hops)/2]
		hopMax = hops[len(hops)-1]
	}

	total := ts.cfg.Clients * ts.cfg.OpsPerClient
	return TreeResult{
		Seed:        ts.cfg.Seed,
		Hash:        ts.trace.Sum(),
		Steps:       ts.steps,
		Levels:      ts.levels,
		Cores:       len(ts.reds),
		Servers:     len(ts.servers),
		Ops:         total - ts.opsLeft,
		Redirects:   ts.nRedirects,
		Waits:       ts.nWaits,
		NoEnts:      ts.nNoEnts,
		Retries:     ts.nRetries,
		Queries:     ts.nQueries,
		Haves:       ts.nHaves,
		HopP50:      hopP50,
		HopMax:      hopMax,
		LatP50:      pctOf(lat, 0.50),
		LatP99:      pctOf(lat, 0.99),
		Crashed:     ts.nCrashed,
		MgrRestarts: ts.nMgrRestarts,
		Violations:  ts.violations,
	}
}
