package detsim

// checkInvariants model-checks the cluster state after one scheduler
// step. It runs with no other goroutine active, so the snapshots are
// consistent. Exactly-once waiter delivery is not checked here — it is
// enforced structurally by collectReleased, which blocks until every
// completion implied by the waiter-delivery ledger has arrived.
func (s *Sim) checkInvariants() {
	if s.abort {
		return
	}
	now := s.clk.Now()

	// 1. Vector disjointness: a server is queried, or known, never
	// both; and a holder is definitive or pending, never both.
	for _, e := range s.core.Cache().Entries() {
		known := e.Vh.Union(e.Vp)
		if !e.Vq.Intersect(known).IsEmpty() {
			s.violate("cache %s: Vq %s intersects Vh|Vp %s", e.Name, e.Vq, known)
		}
		if !e.Vh.Intersect(e.Vp).IsEmpty() {
			s.violate("cache %s: Vh %s intersects Vp %s", e.Name, e.Vh, e.Vp)
		}
	}

	// 2. Flood uniqueness: at most one live query flood per path inside
	// the processing deadline. A client-forced refresh may legitimately
	// overlap the flood it is refreshing past, so paths under a refresh
	// guard are exempt until the guard lapses. InflightFloods is sorted
	// by QID, so a violation is detected at a deterministic point.
	livePaths := make(map[string]uint64)
	for _, f := range s.core.InflightFloods() {
		if now.After(f.Deadline) {
			continue
		}
		if first, dup := livePaths[f.Path]; dup {
			if g, ok := s.refreshGuard[f.Path]; !ok || now.After(g) {
				s.violate("two live floods for %s (qid %d and %d)", f.Path, first, f.QID)
			}
			continue
		}
		livePaths[f.Path] = f.QID
	}

	// 3. Fast-queue conservation, in entry units and waiter units. The
	// waiter form is the lost-client detector: every registered waiter
	// is either still parked or was delivered exactly once.
	st := s.core.Queue().Stats()
	if st.Entries != st.Released+st.Expired+int64(st.InUse) {
		s.violate("respq entry leak: %d entries != %d released + %d expired + %d in use",
			st.Entries, st.Released, st.Expired, st.InUse)
	}
	if st.Entries+st.Joins != st.ReleasedWaiters+st.ExpiredWaiters+int64(s.parked) {
		s.violate("respq waiter leak: %d registered != %d released + %d expired + %d parked",
			st.Entries+st.Joins, st.ReleasedWaiters, st.ExpiredWaiters, s.parked)
	}

	// 4. Vp service fence: a file still being staged never serves
	// bytes. The harness schedules each stage as an explicit interval
	// (requestStage → evStage), so while a (server, path) is pending
	// the server's store must still report it offline; and a store may
	// never report a path both online and in its own staging set (the
	// structural form the disk backend relies on — a file enters the
	// online index only after the MSS move completes).
	for k := range s.stagePending {
		if k.sv.st.HasOnline(k.path) {
			s.violate("s%d serves %s while it is still staging (Vp)", k.sv.id, k.path)
		}
	}
	for _, sv := range s.servers {
		for _, p := range sv.st.StagingPaths() {
			if sv.st.HasOnline(p) {
				s.violate("s%d store reports %s both online and staging", sv.id, p)
			}
		}
	}
}
