package mux

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalla/internal/proto"
	"scalla/internal/transport"
)

// fairnessService is the mean per-request service time. 3 ms keeps
// scheduler queueing dominant over goroutine-wakeup noise, which on a
// loaded single-core -race run costs each reply a millisecond or more
// regardless of what the scheduler did. Each request actually sleeps
// 1.5–4.5 ms (seeded per stream ID) so worker completions stay
// staggered: on a single P the runtime coalesces identical sleep
// timers, and synchronized workers would add a spurious half-batch
// (1.5 ms) to every victim op that no real deployment sees.
const fairnessService = 3 * time.Millisecond

func fairnessSleep(sid uint32) {
	spread := fairnessService / 8 * time.Duration(sid%8) // 0..2.6ms
	time.Sleep(fairnessService/2 + spread)
}

// fairnessServer accepts connections forever and serves each through
// the shared scheduler with a fixed mean service time per request, so
// capacity is workers/fairnessService and contention effects dominate
// measurement noise.
func fairnessServer(t *testing.T, net transport.Network, sched *Scheduler) func() {
	t.Helper()
	lis, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				Serve(conn, func(m proto.Message, r Responder) proto.Message {
					fairnessSleep(r.Stream())
					return proto.StatOK{Exists: true}
				}, ServeOptions{Sched: sched})
			}()
		}
	}()
	return func() {
		lis.Close()
		wg.Wait()
	}
}

// victimRate runs one lock-step client for the window and returns its
// completed ops/s.
func victimRate(t *testing.T, net transport.Network, window time.Duration) float64 {
	t.Helper()
	mc, err := Dial(net, "srv", Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	deadline := time.Now().Add(window)
	ops := 0
	start := time.Now()
	for time.Now().Before(deadline) {
		reply, err := mc.Call(proto.Stat{Path: "/victim"}, 10*time.Second)
		if err != nil {
			t.Fatalf("victim call: %v", err)
		}
		if _, ok := reply.(proto.StatOK); !ok {
			t.Fatalf("victim got %#v", reply)
		}
		ops++
	}
	return float64(ops) / time.Since(start).Seconds()
}

// TestSchedFairness32GreedyVs1Victim is the fairness acceptance test
// (ISSUE 8): 32 greedy clients, each keeping 8 pipelined streams in
// flight, share one scheduler with a single lock-step victim. DRR must
// keep the victim's ops/s within 2× of its uncontended rate, and every
// greedy stream must still complete (no worker deadlock). Run under
// -race in CI.
func TestSchedFairness32GreedyVs1Victim(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	sched := NewScheduler(SchedConfig{Workers: 8, QueueLimit: 2048})
	defer sched.Close()
	stop := fairnessServer(t, net, sched)
	defer stop()

	uncontended := victimRate(t, net, 300*time.Millisecond)
	if uncontended < 50 {
		t.Skipf("host too slow for a timing assertion: uncontended victim at %.0f ops/s", uncontended)
	}

	// Flood: 32 greedy clients × 8 concurrent streams of 64 KiB-cost
	// reads, running until told to stop.
	var (
		stopFlood atomic.Bool
		greedyOps atomic.Int64
		wg        sync.WaitGroup
	)
	for g := 0; g < 32; g++ {
		mc, err := Dial(net, "srv", Options{MaxInFlight: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer mc.Close()
		for s := 0; s < 8; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stopFlood.Load() {
					if _, err := mc.Call(proto.Read{FH: 1, N: 64 << 10}, 30*time.Second); err != nil {
						return
					}
					greedyOps.Add(1)
				}
			}()
		}
	}
	// Let the backlog form, then measure the victim under surge.
	time.Sleep(200 * time.Millisecond)
	contended := victimRate(t, net, 500*time.Millisecond)
	stopFlood.Store(true)
	wg.Wait()

	t.Logf("victim: uncontended %.0f ops/s, under 256 greedy streams %.0f ops/s; greedy completed %d ops",
		uncontended, contended, greedyOps.Load())
	if contended < uncontended/2 {
		t.Fatalf("victim starved: %.0f ops/s under surge vs %.0f uncontended (limit: within 2×)",
			contended, uncontended)
	}
	if greedyOps.Load() == 0 {
		t.Fatal("greedy clients made no progress; scheduler deadlocked the bulk lane")
	}
}
