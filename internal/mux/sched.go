package mux

// Scheduled dispatch: the overload-protection and QoS layer for the
// responder side of the multiplexed protocol (DESIGN.md §11). A
// Scheduler is shared by every connection a server accepts and replaces
// the per-connection FIFO worker pool with
//
//   - a strict-priority control lane, so cluster-control frames
//     (heartbeats, floods, subscriptions) never wait behind bulk data
//     frames;
//   - deficit-round-robin (DRR) fair queueing across connections, so
//     one greedy pipelined client cannot starve a single-stream reader;
//   - a bounded data-lane queue with typed RetryAfter shedding — the
//     respq 5 s full-delay generalized into an explicit backpressure
//     signal the client's backoff understands.
//
// The uncontended enqueue→dequeue path allocates nothing after warmup:
// jobs live in growable rings owned by the scheduler, and the decoded
// message is the only heap object, boxed once at frame decode.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"scalla/internal/metrics"
	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/vclock"
)

// Lane classifies a request for scheduling: control frames preempt data
// frames.
type Lane uint8

// The two scheduling lanes.
const (
	// LaneControl carries cluster-control traffic: login, heartbeat,
	// flood, and subscription frames. It is served with strict priority
	// and is never shed.
	LaneControl Lane = iota
	// LaneData carries everything else — opens, reads, writes, locates.
	// It is DRR-scheduled across clients and shed when the queue fills.
	LaneData
	laneCount
)

// LaneOf returns the lane a message is scheduled on. The control set is
// exactly the cmsd control-plane kinds (Login through HaveNot) plus the
// data-plane Ping, so liveness probes keep working on a saturated data
// server.
func LaneOf(m proto.Message) Lane {
	switch m.Kind() {
	case proto.KLogin, proto.KLoginOK, proto.KLoginRej, proto.KQuery,
		proto.KHave, proto.KHaveNot, proto.KPing, proto.KPong:
		return LaneControl
	}
	return LaneData
}

// costUnit is the payload size that adds one unit of DRR cost: requests
// are charged 1 + payload/costUnit, so byte-heavy reads and writes
// drain a client's deficit faster than metadata operations and fairness
// approximates byte share, not op share.
const costUnit = 16 << 10

// maxCost caps one request's charge so a single huge transfer cannot
// force the dequeue loop through many replenish rounds while holding
// the scheduler lock.
const maxCost = 64

func costOf(m proto.Message) int32 {
	var payload int
	switch v := m.(type) {
	case proto.Read:
		payload = int(v.N)
	case proto.Write:
		payload = len(v.Bytes)
	}
	c := int32(1 + payload/costUnit)
	if c > maxCost {
		return maxCost
	}
	return c
}

// SchedConfig parameterizes a Scheduler.
type SchedConfig struct {
	// Workers bounds how many requests execute concurrently across all
	// connections sharing the scheduler. Default 8.
	Workers int
	// QueueLimit bounds queued-but-not-executing data-lane requests,
	// summed over all clients; an arrival beyond it is shed with a
	// RetryAfter verdict. Every client is guaranteed one queued request
	// regardless: a client with nothing queued is always admitted, so a
	// sparse (single-stream) client survives a queue pinned at its limit
	// by a pipelined cohort — admission fairness to match the DRR
	// dispatch fairness. Total queued is therefore bounded by QueueLimit
	// plus the client count. Control-lane frames are never shed. Default
	// 1024.
	QueueLimit int
	// Quantum is the DRR credit (in cost units; one unit ≈ one metadata
	// op or 16 KiB of payload) granted per round-robin visit, and the
	// starting credit of a newly active client. Default 8.
	Quantum int
	// RetryAfterMillis is the nominal shed backoff hint; each verdict
	// carries a jittered value in [base/2, 3·base/2] so a shed cohort
	// does not retry in lockstep. Default 100.
	RetryAfterMillis int
	// Seed seeds the shed-jitter RNG, making verdicts deterministic for
	// a given arrival order (the detsim invariant relies on this).
	Seed int64
	// Clock supplies time for wait histograms. Default vclock.Real().
	Clock vclock.Clock
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
	if c.Quantum <= 0 {
		c.Quantum = 8
	}
	if c.RetryAfterMillis <= 0 {
		c.RetryAfterMillis = 100
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	return c
}

// job is one admitted request waiting for a worker. It carries the
// pooled frame the request decoded from (m's byte fields may alias it);
// whoever retires the job — worker after dispatch, or a discard site —
// releases the frame.
type job struct {
	c    *schedClient
	m    proto.Message
	sid  uint32
	f    *proto.Frame
	enq  time.Time
	cost int32
	lane Lane
}

// releaseFrame recycles the job's request frame, if it has one (jobs
// built by tests bypass the frame path).
func (j *job) releaseFrame() {
	if j.f != nil {
		j.f.Release()
	}
}

// jobRing is a growable FIFO of jobs backed by a circular buffer, so
// steady-state enqueue/dequeue allocates nothing.
type jobRing struct {
	buf  []job
	head int
	n    int
}

func (r *jobRing) push(j job) {
	if r.n == len(r.buf) {
		grown := make([]job, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = j
	r.n++
}

func (r *jobRing) pop() job {
	j := r.buf[r.head]
	r.buf[r.head] = job{} // release the message reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return j
}

func (r *jobRing) peek() *job { return &r.buf[r.head] }
func (r *jobRing) len() int   { return r.n }

// schedClient is one registered connection's scheduling state: its
// data-lane FIFO, DRR deficit, and position in the active ring.
type schedClient struct {
	st  *serveState
	h   Handler
	opt ServeOptions

	q       jobRing
	deficit int

	// Intrusive circular doubly-linked active ring; nil links when the
	// client has no queued data jobs.
	next, prev *schedClient
	active     bool
	// fresh marks a client activated since it was last visited by the
	// dequeue loop: fresh clients form a FIFO segment at the front of
	// the ring (see activateLocked).
	fresh bool
	// out counts outstanding data-lane jobs (queued or running); multi
	// latches when the client ever overlapped two, the signature of a
	// pipelined cohort; heavy carries the previous active period's
	// verdict and demotes the next activation to the round tail.
	out   int
	multi bool
	heavy bool

	running int  // dispatched, handler not yet returned
	gone    bool // unregistered; drop rather than dispatch
}

// Scheduler is a server-wide request scheduler shared by every
// connection passed to Serve with ServeOptions.Sched set. It owns the
// worker pool; per-connection Serve loops only decode frames and
// enqueue. Close it when the owning server shuts down.
type Scheduler struct {
	cfg SchedConfig

	mu      sync.Mutex
	cond    sync.Cond
	rng     *rand.Rand // shed jitter; guarded by mu
	ctl     jobRing    // control lane, global FIFO
	head    *schedClient
	newTail *schedClient // newest member of the fresh FIFO segment
	clients int
	queued  int // data-lane jobs across all clients
	maxq    int
	running int
	disp    [laneCount]int64
	shed    int64
	closed  bool

	wait [laneCount]*metrics.Histogram
	wg   sync.WaitGroup
}

// NewScheduler builds a Scheduler and starts its workers.
func NewScheduler(cfg SchedConfig) *Scheduler {
	s := newScheduler(cfg)
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// newScheduler builds the scheduler without starting workers; tests
// step nextLocked by hand for determinism.
func newScheduler(cfg SchedConfig) *Scheduler {
	s := &Scheduler{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.cond.L = &s.mu
	for i := range s.wait {
		s.wait[i] = &metrics.Histogram{}
	}
	return s
}

// Close drops every queued request, waits for in-flight handlers to
// finish, and stops the workers. Enqueues after Close shed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for s.ctl.len() > 0 {
		j := s.ctl.pop()
		j.releaseFrame()
	}
	for s.head != nil {
		c := s.head
		s.queued -= c.q.len()
		for c.q.len() > 0 {
			j := c.q.pop()
			j.releaseFrame()
		}
		s.deactivateLocked(c)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// register adds one connection to the scheduler.
func (s *Scheduler) register(st *serveState, h Handler, opt ServeOptions) *schedClient {
	c := &schedClient{st: st, h: h, opt: opt}
	s.mu.Lock()
	s.clients++
	s.mu.Unlock()
	return c
}

// unregister drops the client's queued jobs and blocks until its
// in-flight handlers have returned — Serve's drain contract.
func (s *Scheduler) unregister(c *schedClient) {
	s.mu.Lock()
	c.gone = true
	s.queued -= c.q.len()
	for c.q.len() > 0 {
		j := c.q.pop()
		j.releaseFrame()
	}
	if c.active {
		s.deactivateLocked(c)
	}
	s.clients--
	for c.running > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// enqueue admits one decoded request, or sheds it: shed=true means the
// caller must answer RetryAfter{millis} itself, release the request
// frame, and the handler will never see the message. On admission the
// scheduler takes ownership of f (released when the job retires).
func (s *Scheduler) enqueue(c *schedClient, m proto.Message, sid uint32, f *proto.Frame) (shedded bool, millis uint32) {
	lane := LaneOf(m)
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	if s.closed || c.gone {
		s.shed++
		millis = s.shedHintLocked()
		s.mu.Unlock()
		return true, millis
	}
	j := job{c: c, m: m, sid: sid, f: f, enq: now, lane: lane}
	if lane == LaneControl {
		s.ctl.push(j)
	} else {
		// The guarantee slot: only clients that already hold a queued
		// request are shed at the limit, so a full queue starves the
		// cohort that filled it, not the sparse client arriving into it.
		if s.queued >= s.cfg.QueueLimit && c.q.len() > 0 {
			// Being shed proves this client overlaps requests (it already
			// holds a queued one), even though the overlapping arrival
			// itself never lands in the queue — without this latch a
			// cohort paced entirely by sheds would look lock-step and
			// crowd the fresh segment.
			c.multi = true
			s.shed++
			millis = s.shedHintLocked()
			s.mu.Unlock()
			return true, millis
		}
		j.cost = costOf(m)
		c.q.push(j)
		s.queued++
		c.out++
		if c.out > 1 {
			// Overlapping data requests: a lock-step client never has a
			// second one in flight, so this client is pipelining.
			c.multi = true
		}
		if s.queued > s.maxq {
			s.maxq = s.queued
		}
		if !c.active {
			s.activateLocked(c)
		}
	}
	s.cond.Signal()
	s.mu.Unlock()
	return false, 0
}

// shedHintLocked draws the jittered retry-after hint in
// [base/2, 3·base/2] milliseconds.
func (s *Scheduler) shedHintLocked() uint32 {
	base := s.cfg.RetryAfterMillis
	return uint32(base/2 + s.rng.Intn(base) + 1)
}

// activateLocked inserts a newly backlogged client into the active
// ring with a full quantum. Where it lands depends on its history
// (DESIGN.md §11):
//
//   - A light client — one that never overlapped two data requests in
//     its previous active period, i.e. a lock-step reader — joins the
//     fresh FIFO segment at the front of the ring, ahead of every
//     backlogged cohort. That is what keeps a sparse client's latency
//     flat under surge. Among themselves fresh clients are strictly
//     FIFO (each insert goes behind the previous one, at newTail):
//     inserting every activation at the absolute head would be LIFO,
//     and under a saturating surge of sparse clients — where every
//     dispatch empties a queue and every retry re-activates — LIFO
//     starves whoever is already waiting.
//
//   - A heavy client — its last period pipelined, the signature of a
//     bulk cohort — re-enters at the round tail and takes its turn
//     through plain DRR, so re-activating on every reply batch buys it
//     no position ahead of lock-step clients. One clean period
//     promotes it back. Depth, not per-period cost, is the classifier
//     because a backlog fragmented by scheduling jitter can make a
//     pipelined client's individual periods look arbitrarily cheap.
func (s *Scheduler) activateLocked(c *schedClient) {
	c.active = true
	c.deficit = s.cfg.Quantum
	if s.head == nil {
		c.next, c.prev = c, c
		s.head = c
		if !c.heavy {
			c.fresh = true
			s.newTail = c
		}
		return
	}
	if c.heavy {
		// Round tail: just behind head, visited last this round.
		tail := s.head.prev
		tail.next = c
		c.prev = tail
		c.next = s.head
		s.head.prev = c
		return
	}
	c.fresh = true
	if at := s.newTail; at != nil {
		c.prev, c.next = at, at.next
		at.next.prev = c
		at.next = c
	} else {
		// No fresh segment: start one ahead of the backlogged round.
		tail := s.head.prev
		tail.next = c
		c.prev = tail
		c.next = s.head
		s.head.prev = c
		s.head = c
	}
	s.newTail = c
}

// unfreshLocked retires c from the fresh segment: called when the
// dequeue loop reaches it, whether it is served or merely visited.
func (s *Scheduler) unfreshLocked(c *schedClient) {
	if !c.fresh {
		return
	}
	c.fresh = false
	if s.newTail == c {
		// The dequeue loop consumes the segment oldest-first, so c being
		// both oldest and newest means the segment is now empty.
		s.newTail = nil
	}
}

func (s *Scheduler) deactivateLocked(c *schedClient) {
	if s.newTail == c {
		// Unregister can remove the newest fresh client mid-segment; the
		// one activated just before it (its prev) becomes the insertion
		// point, unless c was the segment's only member.
		if p := c.prev; p != c && p.fresh {
			s.newTail = p
		} else {
			s.newTail = nil
		}
	}
	if c.next == c {
		s.head = nil
	} else {
		c.prev.next = c.next
		c.next.prev = c.prev
		if s.head == c {
			s.head = c.next
		}
	}
	c.next, c.prev = nil, nil
	c.active = false
	c.fresh = false
	c.heavy = c.multi
	c.multi = false
	c.deficit = 0
}

// nextLocked pops the next runnable job — control lane first, then DRR
// over active clients — and accounts it as started. ok=false means
// nothing is runnable.
func (s *Scheduler) nextLocked() (j job, ok bool) {
	for s.ctl.len() > 0 {
		j = s.ctl.pop()
		if j.c.gone { // connection died with control frames queued
			j.releaseFrame()
			continue
		}
		s.startLocked(&j)
		return j, true
	}
	for s.head != nil {
		c := s.head
		if int(c.q.peek().cost) <= c.deficit {
			j = c.q.pop()
			s.queued--
			c.deficit -= int(j.cost)
			s.unfreshLocked(c)
			if c.q.len() == 0 {
				s.deactivateLocked(c)
			}
			s.startLocked(&j)
			return j, true
		}
		// Visit exhausted: replenish and move on. Terminates because
		// each full ring pass grows every deficit by Quantum and cost
		// is capped at maxCost.
		c.deficit += s.cfg.Quantum
		s.unfreshLocked(c)
		s.head = c.next
	}
	return job{}, false
}

func (s *Scheduler) startLocked(j *job) {
	j.c.running++
	s.running++
	s.disp[j.lane]++
}

// dispatch runs one scheduled job: the per-connection dispatch helper
// split around replied(), so the outstanding count drops before the
// reply can trigger a lock-step client's next request.
func (s *Scheduler) dispatch(j job) {
	r := Responder{st: j.c.st, sid: j.sid}
	opt := j.c.opt
	var sp *obs.Span
	if opt.Tracer.Enabled() {
		sp = opt.Tracer.Start("dispatch", fmt.Sprintf("%T sid=%d", j.m, j.sid))
	}
	reply := j.c.h(j.m, r)
	s.replied(j)
	if reply == nil {
		sp.End("handled")
		return
	}
	if err := r.Send(reply); err != nil {
		sp.End("send failed")
		return
	}
	if sp != nil {
		sp.End(fmt.Sprintf("%T", reply))
	}
}

// replied retires a data-lane job from the client's outstanding count.
// It runs after the handler but before the reply is written: a
// lock-step client's next request can only be sent after it reads this
// reply, so decrementing any later would race that arrival and
// misclassify the client as pipelining (the reply write is a syscall —
// a preemption point — and under load the worker goroutine may not run
// again for milliseconds).
func (s *Scheduler) replied(j job) {
	if j.lane != LaneData {
		return
	}
	s.mu.Lock()
	j.c.out--
	s.mu.Unlock()
}

// finish accounts a completed dispatch and wakes any unregister waiting
// to drain the client.
func (s *Scheduler) finish(j job) {
	c := j.c
	s.mu.Lock()
	c.running--
	s.running--
	if c.gone && c.running == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// worker pulls jobs until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		j, ok := s.nextLocked()
		for !ok {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			j, ok = s.nextLocked()
		}
		s.mu.Unlock()
		s.wait[j.lane].Observe(s.cfg.Clock.Now().Sub(j.enq))
		s.dispatch(j)
		s.finish(j)
		j.releaseFrame()
	}
}

// SchedStats is a point-in-time snapshot of a Scheduler's gauges and
// lane-wait histograms, exported through obs summary frames and
// /statusz.
type SchedStats struct {
	// Clients is the number of registered connections.
	Clients int
	// QueuedControl and QueuedData are current queue depths per lane.
	QueuedControl int
	// QueuedData is the data-lane depth summed across clients.
	QueuedData int
	// MaxQueuedData is the high-water data-lane depth since start.
	MaxQueuedData int
	// InFlight is the number of handlers currently executing.
	InFlight int
	// DispatchedControl and DispatchedData count handed-off requests.
	DispatchedControl int64
	// DispatchedData counts data-lane dispatches.
	DispatchedData int64
	// Shed counts requests answered with RetryAfter instead of queued.
	Shed int64
	// ControlWait and DataWait summarize enqueue-to-dispatch wait per
	// lane.
	ControlWait metrics.Snapshot
	// DataWait is the data-lane wait summary.
	DataWait metrics.Snapshot
}

// Summary renders the scheduler's stats as the obs summary-frame
// section, for daemons assembling their monitoring frames.
func (s *Scheduler) Summary() *obs.SchedSummary {
	st := s.Stats()
	return &obs.SchedSummary{
		Clients:    st.Clients,
		QueuedCtl:  st.QueuedControl,
		QueuedData: st.QueuedData,
		MaxQueued:  st.MaxQueuedData,
		InFlight:   st.InFlight,
		DispCtl:    st.DispatchedControl,
		DispData:   st.DispatchedData,
		Shed:       st.Shed,
		CtlWait:    obs.OpFromSnapshot(st.ControlWait),
		DataWait:   obs.OpFromSnapshot(st.DataWait),
	}
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	st := SchedStats{
		Clients:           s.clients,
		QueuedControl:     s.ctl.len(),
		QueuedData:        s.queued,
		MaxQueuedData:     s.maxq,
		InFlight:          s.running,
		DispatchedControl: s.disp[LaneControl],
		DispatchedData:    s.disp[LaneData],
		Shed:              s.shed,
	}
	s.mu.Unlock()
	st.ControlWait = s.wait[LaneControl].Snapshot()
	st.DataWait = s.wait[LaneData].Snapshot()
	return st
}
