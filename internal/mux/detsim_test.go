package mux

// Deterministic model check for the scheduler, in the detsim style
// (run by the CI detsim job, seed via DETSIM_SEED): a seeded surge of
// control and data frames from a population of clients is stepped
// through enqueue/dequeue by hand — no goroutines — and two properties
// are asserted on every step:
//
//  1. Priority bound: no control-plane frame is ever queued behind more
//     than Workers data frames — the number of data dispatches started
//     between a control frame's enqueue and its dequeue never exceeds
//     the worker count (with strict priority it is exactly the jobs
//     already executing; nothing new may overtake).
//  2. Shed determinism: replaying the same seed reproduces the same
//     shed verdicts — same arrival indices, same RetryAfter millis.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"scalla/internal/proto"
)

// muxDetsimSeed resolves the model-check seed (DETSIM_SEED, default 1).
func muxDetsimSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("DETSIM_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("DETSIM_SEED=%q is not an integer: %v", s, err)
	}
	return v
}

// shedEvent is one recorded shed verdict: which arrival and what hint.
type shedEvent struct {
	step   int
	millis uint32
}

// runSchedSurge drives one seeded surge through a manual scheduler and
// returns the shed trace. The surge keeps up to Workers jobs "running";
// each step either delivers a new frame from a random client (mostly
// bulk reads, sometimes control pings), completes a running job, or
// lets a worker pull the next runnable one.
func runSchedSurge(t *testing.T, seed int64, steps int) []shedEvent {
	t.Helper()
	const workers = 4
	s := newScheduler(SchedConfig{
		Workers:          workers,
		QueueLimit:       64,
		RetryAfterMillis: 100,
		Seed:             seed,
	})
	rng := rand.New(rand.NewSource(seed))
	clients := make([]*schedClient, 24)
	for i := range clients {
		clients[i] = s.register(nil, nil, ServeOptions{})
	}

	var (
		trace         []shedEvent
		running       []job
		dataStarts    int                // data dispatches started so far
		ctlEnqueuedAt = map[uint32]int{} // pending control sid -> dataStarts at enqueue
		nextSid       uint32
	)
	pull := func(step int) {
		if len(running) >= workers {
			return
		}
		s.mu.Lock()
		j, ok := s.nextLocked()
		s.mu.Unlock()
		if !ok {
			return
		}
		if j.lane == LaneData {
			dataStarts++
		} else {
			started, known := ctlEnqueuedAt[j.sid]
			if !known {
				t.Fatalf("step %d: dequeued untracked control frame sid=%d", step, j.sid)
			}
			if behind := dataStarts - started; behind > workers {
				t.Fatalf("step %d (seed %d): control frame sid=%d queued behind %d data frames, limit %d",
					step, seed, j.sid, behind, workers)
			}
			delete(ctlEnqueuedAt, j.sid)
		}
		running = append(running, j)
	}
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(10); {
		case r < 5: // arrival
			c := clients[rng.Intn(len(clients))]
			sid := nextSid
			nextSid++
			var m proto.Message
			ctl := rng.Intn(8) == 0
			if ctl {
				m = proto.Ping{}
			} else {
				m = proto.Read{FH: 1, N: uint32(rng.Intn(4)) * 32 << 10}
			}
			shedded, millis := s.enqueue(c, m, sid, nil)
			if shedded {
				if ctl {
					t.Fatalf("step %d (seed %d): control frame shed", step, seed)
				}
				trace = append(trace, shedEvent{step: step, millis: millis})
			} else if ctl {
				ctlEnqueuedAt[sid] = dataStarts
			}
		case r < 8: // a worker pulls
			pull(step)
		default: // a running job completes
			if len(running) > 0 {
				i := rng.Intn(len(running))
				j := running[i]
				running = append(running[:i], running[i+1:]...)
				s.finish(j)
			}
		}
	}
	// Drain: every admitted control frame must still get out ahead of
	// the backlog.
	for {
		for len(running) > 0 {
			j := running[0]
			running = running[1:]
			s.finish(j)
		}
		s.mu.Lock()
		j, ok := s.nextLocked()
		s.mu.Unlock()
		if !ok {
			break
		}
		if j.lane == LaneControl {
			delete(ctlEnqueuedAt, j.sid)
		} else {
			dataStarts++
		}
		running = append(running, j)
	}
	if len(ctlEnqueuedAt) != 0 {
		t.Fatalf("seed %d: %d admitted control frames never dispatched", seed, len(ctlEnqueuedAt))
	}
	if st := s.Stats(); int64(len(trace)) != st.Shed {
		t.Fatalf("seed %d: trace has %d sheds, scheduler counted %d", seed, len(trace), st.Shed)
	}
	return trace
}

// TestDetsimSchedSurgeInvariants runs the seeded surge model check
// across a small seed sweep: the priority bound holds on every step and
// shed verdicts are byte-identical across a replay of the same seed.
func TestDetsimSchedSurgeInvariants(t *testing.T) {
	base := muxDetsimSeed(t)
	for i := int64(0); i < 4; i++ {
		seed := base + i
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runSchedSurge(t, seed, 4000)
			again := runSchedSurge(t, seed, 4000)
			if len(first) == 0 {
				t.Fatalf("seed %d: surge produced no sheds; model not exercising the queue limit", seed)
			}
			if len(first) != len(again) {
				t.Fatalf("seed %d: replay shed %d times vs %d", seed, len(again), len(first))
			}
			for i := range first {
				if first[i] != again[i] {
					t.Fatalf("seed %d: shed %d differs across replay: %+v vs %+v", seed, i, first[i], again[i])
				}
			}
		})
	}
}
