package mux

import (
	"fmt"
	"sync"

	"scalla/internal/obs"
	"scalla/internal/proto"
	"scalla/internal/transport"
)

// Handler processes one decoded request. Returning a non-nil message
// sends it as the stream-tagged reply; returning nil sends nothing —
// either the request wants no reply, or the handler already replied
// itself through the Responder (the single-copy Data path).
//
// Requests decode from pooled frames that the serve loop recycles as
// soon as the handler returns: a handler must not retain m — or any
// byte slice decoded from it (proto.Write.Bytes aliases the frame) —
// past its own return. Copy what must outlive the call.
type Handler func(m proto.Message, r Responder) proto.Message

// ServeOptions tunes a responder-side dispatch loop.
type ServeOptions struct {
	// Workers bounds how many requests from one connection execute
	// concurrently. With Workers <= 1 dispatch is serial and inline —
	// the deterministic lock-step of the original serve loops. Default
	// 1.
	Workers int
	// Tracer records one span per dispatched request (kind, stream,
	// reply) when enabled. Default: no tracing.
	Tracer *obs.Tracer
	// OnError, if set, receives frame decode errors before the loop
	// stops serving the connection.
	OnError func(err error)
	// Sched, if set, routes this connection's requests through a
	// server-wide Scheduler instead of a per-connection worker pool:
	// strict-priority control lane, DRR fairness across connections,
	// and bounded-queue shedding with RetryAfter verdicts (DESIGN.md
	// §11). Workers is ignored — concurrency is the scheduler's.
	Sched *Scheduler
}

// Responder sends stream-tagged replies for one in-flight request.
// Concurrent workers write straight to the connection — transport.Conn
// Send is safe for any number of concurrent callers, and on the TCP
// transport overlapping repliers coalesce into shared vectored-write
// batches rather than queueing on a lock.
type Responder struct {
	st  *serveState
	sid uint32
}

// Stream returns the stream ID of the request being answered, which
// every reply must echo.
func (r Responder) Stream() uint32 { return r.sid }

// Send marshals m tagged with the request's stream and writes it out.
func (r Responder) Send(m proto.Message) error {
	return transport.SendMessageStream(r.st.conn, m, r.sid)
}

// SendFrame writes a pre-marshaled pooled frame — which the caller
// must already have tagged with Stream() — and releases it. This is
// the single-copy read path: the payload is marshaled straight into
// the frame and never copied again.
func (r Responder) SendFrame(f *proto.Frame) error {
	err := r.st.conn.Send(f.Bytes())
	f.Release()
	return err
}

// serveState is the per-connection dispatch state shared by workers.
type serveState struct {
	conn transport.Conn
}

// Serve reads frames from conn and dispatches them to h until the
// connection fails or a frame fails to decode. With Workers > 1,
// requests run on a bounded worker pool — spawned on demand, capped at
// Workers — and replies are written out of order, tagged by stream;
// the frame reader blocks once every worker is busy, which is the
// connection's backpressure. With opt.Sched set, dispatch is handed to
// the shared scheduler instead and overflow is shed with RetryAfter
// rather than blocking the reader. Either way Serve returns only after
// every in-flight handler has finished.
func Serve(conn transport.Conn, h Handler, opt ServeOptions) {
	if opt.Sched != nil {
		serveSched(conn, h, opt)
		return
	}
	st := &serveState{conn: conn}
	if opt.Workers <= 1 {
		for {
			m, sid, f, err := recvOne(conn, opt)
			if err != nil {
				return
			}
			dispatch(h, m, Responder{st: st, sid: sid}, opt)
			f.Release()
		}
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	spawned := 0
	defer func() {
		close(jobs)
		wg.Wait()
	}()
	for {
		m, sid, f, err := recvOne(conn, opt)
		if err != nil {
			return
		}
		j := job{m: m, sid: sid, f: f}
		if spawned < opt.Workers {
			// Prefer an idle worker; grow the pool only when all are busy.
			select {
			case jobs <- j:
				continue
			default:
			}
			spawned++
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					dispatch(h, j.m, Responder{st: st, sid: j.sid}, opt)
					j.releaseFrame()
				}
			}()
		}
		jobs <- j
	}
}

// serveSched is the scheduled Serve loop: decode, enqueue, and answer
// sheds inline. The scheduler's workers run the handlers; unregister
// blocks until this connection's in-flight handlers drain, preserving
// Serve's return contract for callers that close handles afterward.
func serveSched(conn transport.Conn, h Handler, opt ServeOptions) {
	st := &serveState{conn: conn}
	c := opt.Sched.register(st, h, opt)
	defer opt.Sched.unregister(c)
	for {
		m, sid, f, err := recvOne(conn, opt)
		if err != nil {
			return
		}
		if shedded, millis := opt.Sched.enqueue(c, m, sid, f); shedded {
			f.Release()
			// Best effort: if the conn is failing the reader sees it.
			_ = transport.SendMessageStream(conn, proto.RetryAfter{Millis: millis}, sid)
		}
	}
}

// recvOne reads and decodes the next request frame. The returned frame
// is pooled and owns the message's aliased bytes; the caller releases
// it once the request has been fully handled.
func recvOne(conn transport.Conn, opt ServeOptions) (proto.Message, uint32, *proto.Frame, error) {
	f, err := transport.RecvFrame(conn)
	if err != nil {
		return nil, 0, nil, err
	}
	m, sid, err := proto.UnmarshalStream(f.Bytes())
	if err != nil {
		f.Release()
		if opt.OnError != nil {
			opt.OnError(err)
		}
		return nil, 0, nil, err
	}
	return m, sid, f, nil
}

// dispatch runs one request through the handler, tracing it and
// sending the returned reply (if any).
func dispatch(h Handler, m proto.Message, r Responder, opt ServeOptions) {
	var sp *obs.Span
	if opt.Tracer.Enabled() {
		sp = opt.Tracer.Start("dispatch", fmt.Sprintf("%T sid=%d", m, r.Stream()))
	}
	reply := h(m, r)
	if reply == nil {
		sp.End("handled")
		return
	}
	if err := r.Send(reply); err != nil {
		sp.End("send failed")
		return
	}
	if sp != nil {
		sp.End(fmt.Sprintf("%T", reply))
	}
}
