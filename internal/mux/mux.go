// Package mux multiplexes many outstanding RPCs over one
// transport.Conn using the per-frame stream IDs of internal/proto —
// the pipelined wire protocol that turns the client/server exchange
// from one-request-per-round-trip lock-step into wire-saturated
// streaming (what real XRootD does with its per-request stream IDs).
//
// The package has two halves:
//
//   - The requester side: a Conn wraps a transport.Conn, assigns a
//     unique nonzero stream ID to every outgoing request, and runs one
//     demultiplexing goroutine that routes each tagged reply to the
//     Call that issued it. Any number of goroutines may Start calls
//     concurrently; a bounded in-flight table (Options.MaxInFlight)
//     provides backpressure. Per-call deadlines expire individual
//     streams without disturbing the rest; a transport failure fails
//     every in-flight stream with an error matching ErrClosed. A Pool
//     shares one Conn per remote address.
//
//   - The responder side: Serve reads frames from a connection,
//     dispatches the decoded requests to a handler on a bounded worker
//     pool, and writes stream-tagged replies back as they complete —
//     out of order when handlers finish out of order. A serial mode
//     (Workers <= 1) preserves the old one-at-a-time semantics for
//     deterministic harnesses.
//
// Ownership rules: a Call started on a Conn must be finished with
// exactly one Wait, WaitFrame, or Cancel, which is what releases its
// in-flight slot. Reply frames arrive pooled and belong to the Call
// once routed: Wait recycles non-aliasing replies itself, WaitFrame
// hands the frame to the caller to Release, and Cancel recycles a
// routed reply it discards. Pooled request frames are released by
// Conn.Start itself (marshal → send → release, per the transport
// ownership contract in DESIGN.md §6.2).
package mux

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"scalla/internal/proto"
	"scalla/internal/transport"
	"scalla/internal/vclock"
)

// Errors reported by the requester side.
var (
	// ErrTimeout marks a call whose per-stream deadline expired. The
	// connection and every other stream on it remain usable: a late
	// reply to the expired stream is dropped by the demultiplexer.
	ErrTimeout = errors.New("mux: stream deadline exceeded")
	// ErrClosed marks calls failed because the underlying connection
	// died or was closed; the transport-level cause is wrapped.
	ErrClosed = errors.New("mux: connection closed")
)

// Options tunes a requester-side Conn.
type Options struct {
	// MaxInFlight bounds the number of concurrent outstanding calls;
	// Start blocks once the window is full. Default 64.
	MaxInFlight int
	// Clock supplies per-call deadlines. Default vclock.Real().
	Clock vclock.Clock
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.Clock == nil {
		o.Clock = vclock.Real()
	}
	return o
}

// Conn is a multiplexing RPC connection: many goroutines issue
// concurrent calls over one shared transport.Conn, each tagged with a
// unique stream ID and matched to its reply by the demultiplexing
// goroutine. Create one with NewConn or Dial.
type Conn struct {
	c     transport.Conn
	clock vclock.Clock
	sem   chan struct{} // in-flight window; one token per started call

	mu      sync.Mutex
	streams map[uint32]*Call
	next    uint32
	dead    error // non-nil once the connection has failed

	done chan struct{} // closed when the conn dies; unblocks Start
	once sync.Once
}

// NewConn wraps c in a multiplexer and starts its demultiplexing
// goroutine. The caller must not use c directly afterwards.
func NewConn(c transport.Conn, opt Options) *Conn {
	opt = opt.withDefaults()
	mc := &Conn{
		c:       c,
		clock:   opt.Clock,
		sem:     make(chan struct{}, opt.MaxInFlight),
		streams: make(map[uint32]*Call),
		done:    make(chan struct{}),
	}
	go mc.demux()
	return mc
}

// Dial connects to addr over net and wraps the connection in a
// multiplexer.
func Dial(net transport.Network, addr string, opt Options) (*Conn, error) {
	c, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c, opt), nil
}

// RemoteAddr names the peer.
func (mc *Conn) RemoteAddr() string { return mc.c.RemoteAddr() }

// Err reports why the connection died, or nil while it is healthy.
func (mc *Conn) Err() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

// Close fails every in-flight stream with ErrClosed and tears the
// transport connection down.
func (mc *Conn) Close() error {
	mc.fail(fmt.Errorf("%w: closed locally", ErrClosed))
	return mc.c.Close()
}

// Call is one outstanding request. It must be finished with exactly
// one Wait, WaitFrame, or Cancel, which releases its slot in the
// in-flight window.
type Call struct {
	conn   *Conn
	sid    uint32
	done   chan struct{} // closed when frame/err is set
	frame  *proto.Frame
	err    error
	slotMu sync.Mutex // guards slotFreed
	freed  bool
}

// Stream returns the stream ID the request was tagged with.
func (ca *Call) Stream() uint32 { return ca.sid }

// Start sends m tagged with a fresh stream ID and returns the
// in-flight Call. It blocks while the in-flight window is full. The
// returned Call must be finished with Wait or Cancel.
func (mc *Conn) Start(m proto.Message) (*Call, error) {
	select {
	case mc.sem <- struct{}{}:
	case <-mc.done:
		return nil, mc.Err()
	}
	ca := &Call{conn: mc, done: make(chan struct{})}
	mc.mu.Lock()
	if mc.dead != nil {
		err := mc.dead
		mc.mu.Unlock()
		<-mc.sem
		return nil, err
	}
	for {
		mc.next++
		if mc.next == 0 { // stream 0 is the lock-step default; never assign it
			mc.next = 1
		}
		if _, taken := mc.streams[mc.next]; !taken {
			break
		}
	}
	ca.sid = mc.next
	mc.streams[ca.sid] = ca
	mc.mu.Unlock()

	if err := transport.SendMessageStream(mc.c, m, ca.sid); err != nil {
		// A send failure is a transport failure: fail the connection so
		// every stream (including this one) sees a typed error.
		mc.fail(fmt.Errorf("%w: send: %v", ErrClosed, err))
		ca.release()
		return nil, mc.Err()
	}
	return ca, nil
}

// Call is the synchronous convenience: Start, then Wait with the given
// deadline.
func (mc *Conn) Call(m proto.Message, timeout time.Duration) (proto.Message, error) {
	ca, err := mc.Start(m)
	if err != nil {
		return nil, err
	}
	return ca.Wait(timeout)
}

// Wait blocks for the call's reply, decoding and returning it. If
// timeout elapses first the call fails with ErrTimeout — the stream is
// abandoned (a late reply is discarded) but the connection and every
// other stream keep working.
//
// When the decoded message does not alias the reply frame's bytes (see
// proto.AliasesFrame), Wait releases the pooled frame itself and the
// caller owns the message outright. For aliasing replies (Data, Write)
// the frame stays alive for as long as the message is reachable and is
// reclaimed by the GC; hot data paths that want pooled recycling use
// WaitFrame instead.
func (ca *Call) Wait(timeout time.Duration) (proto.Message, error) {
	m, f, err := ca.WaitFrame(timeout)
	if err != nil {
		return nil, err
	}
	if !proto.AliasesFrame(m) {
		f.Release()
	}
	return m, nil
}

// WaitFrame is Wait for hot paths: it additionally returns the pooled
// reply frame, which the caller owns and must Release once every use of
// the message — whose byte fields may alias the frame — is over.
func (ca *Call) WaitFrame(timeout time.Duration) (proto.Message, *proto.Frame, error) {
	select {
	case <-ca.done:
	case <-ca.conn.clock.After(timeout):
		if ca.conn.abandon(ca) {
			ca.release()
			return nil, nil, fmt.Errorf("%w after %v (stream %d)", ErrTimeout, timeout, ca.sid)
		}
		// The reply raced the deadline and is already routed; take it.
		<-ca.done
	}
	ca.release()
	if ca.err != nil {
		return nil, nil, ca.err
	}
	m, _, err := proto.UnmarshalStream(ca.frame.Bytes())
	if err != nil {
		ca.frame.Release()
		return nil, nil, err
	}
	return m, ca.frame, nil
}

// Done returns a channel closed once the reply (or the connection's
// failure) has arrived, for select-based readahead consumers. The call
// must still be finished with Wait or Cancel.
func (ca *Call) Done() <-chan struct{} { return ca.done }

// Cancel abandons the call: its in-flight slot is released and a late
// reply will be discarded. Cancel after a reply arrived simply drops
// the reply and recycles its frame. It is safe to call at most once,
// and not after Wait.
func (ca *Call) Cancel() {
	if !ca.conn.abandon(ca) {
		// A reply already routed (or the conn failed the call); wait for
		// the routing to finish so the frame can be recycled safely.
		<-ca.done
		if ca.frame != nil {
			ca.frame.Release()
		}
	}
	ca.release()
}

// release frees the call's in-flight window slot exactly once.
func (ca *Call) release() {
	ca.slotMu.Lock()
	freed := ca.freed
	ca.freed = true
	ca.slotMu.Unlock()
	if !freed {
		<-ca.conn.sem
	}
}

// abandon removes the call from the stream table, reporting whether it
// was still pending (false means a reply was already routed or the
// conn failed the call).
func (mc *Conn) abandon(ca *Call) bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if cur, ok := mc.streams[ca.sid]; ok && cur == ca {
		delete(mc.streams, ca.sid)
		return true
	}
	return false
}

// fail marks the connection dead and fails every in-flight stream.
func (mc *Conn) fail(err error) {
	mc.mu.Lock()
	if mc.dead == nil {
		mc.dead = err
		for sid, ca := range mc.streams {
			delete(mc.streams, sid)
			ca.err = err
			close(ca.done)
		}
	}
	mc.mu.Unlock()
	mc.once.Do(func() { close(mc.done) })
}

// demux is the connection's receive loop: it routes each tagged reply
// to its waiting call and fails everything when the transport dies.
// Replies arrive in pooled frames (transport.RecvFrame); ownership
// passes to the routed Call, and late replies to expired or cancelled
// streams are released here.
func (mc *Conn) demux() {
	for {
		f, err := transport.RecvFrame(mc.c)
		if err != nil {
			mc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		sid := proto.StreamID(f.Bytes())
		mc.mu.Lock()
		ca, ok := mc.streams[sid]
		if ok {
			delete(mc.streams, sid)
		}
		mc.mu.Unlock()
		if !ok {
			f.Release() // late reply to an expired or cancelled stream
			continue
		}
		ca.frame = f
		close(ca.done)
	}
}
