package mux

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalla/internal/proto"
	"scalla/internal/transport"
)

// stepSched builds a scheduler with no worker goroutines so tests can
// step dequeues deterministically.
func stepSched(cfg SchedConfig) *Scheduler { return newScheduler(cfg) }

// stepNext pops one job by hand, simulating a worker cycle without
// running the handler.
func stepNext(s *Scheduler) (job, bool) {
	s.mu.Lock()
	j, ok := s.nextLocked()
	s.mu.Unlock()
	return j, ok
}

// stepFinish mirrors the worker's post-handler accounting.
func stepFinish(s *Scheduler, j job) {
	s.replied(j)
	s.finish(j)
}

// TestSchedControlLanePreemptsData pins strict priority: once a control
// frame is enqueued, no later dequeue may return a data frame before
// it, no matter how deep the data backlog is.
func TestSchedControlLanePreemptsData(t *testing.T) {
	s := stepSched(SchedConfig{Workers: 4, QueueLimit: 1000})
	c := s.register(nil, nil, ServeOptions{})
	for i := 0; i < 100; i++ {
		if shedded, _ := s.enqueue(c, proto.Read{FH: 1, N: 64 << 10}, uint32(i), nil); shedded {
			t.Fatalf("data enqueue %d shed below QueueLimit", i)
		}
	}
	if shedded, _ := s.enqueue(c, proto.Ping{}, 999, nil); shedded {
		t.Fatal("control frame shed")
	}
	j, ok := stepNext(s)
	if !ok {
		t.Fatal("nothing runnable")
	}
	if j.lane != LaneControl {
		t.Fatalf("first dequeue after control enqueue is %T on lane %d, want control", j.m, j.lane)
	}
	if _, isPing := j.m.(proto.Ping); !isPing {
		t.Fatalf("control dequeue returned %T", j.m)
	}
}

// TestSchedShedsBeyondQueueLimit pins the bounded queue: data arrivals
// beyond QueueLimit shed with a hint inside the jitter bounds, control
// arrivals never shed, and draining reopens admission.
func TestSchedShedsBeyondQueueLimit(t *testing.T) {
	s := stepSched(SchedConfig{QueueLimit: 4, RetryAfterMillis: 100})
	c := s.register(nil, nil, ServeOptions{})
	for i := 0; i < 4; i++ {
		if shedded, _ := s.enqueue(c, proto.Locate{Path: "/f"}, uint32(i), nil); shedded {
			t.Fatalf("enqueue %d shed below limit", i)
		}
	}
	shedded, millis := s.enqueue(c, proto.Locate{Path: "/f"}, 4, nil)
	if !shedded {
		t.Fatal("5th data enqueue not shed at QueueLimit=4")
	}
	if millis < 50 || millis > 150 {
		t.Fatalf("shed hint %d ms outside [base/2, 3·base/2] for base 100", millis)
	}
	if shedded, _ := s.enqueue(c, proto.Ping{}, 5, nil); shedded {
		t.Fatal("control frame shed while data lane full")
	}
	// The guarantee slot: a client with nothing queued is admitted even
	// at the limit, so the full queue starves its filler, not a sparse
	// newcomer.
	sparse := s.register(nil, nil, ServeOptions{})
	if shedded, _ := s.enqueue(sparse, proto.Locate{Path: "/g"}, 6, nil); shedded {
		t.Fatal("sparse client's first request shed at full queue; guarantee slot broken")
	}
	if shedded, _ := s.enqueue(sparse, proto.Locate{Path: "/g"}, 7, nil); !shedded {
		t.Fatal("sparse client's second request admitted past the limit")
	}
	if j, ok := stepNext(s); !ok || j.lane != LaneControl {
		t.Fatalf("expected queued control frame first, got %#v ok=%v", j, ok)
	}
	if _, ok := stepNext(s); !ok {
		t.Fatal("expected queued data frame")
	}
	if st := s.Stats(); st.Shed != 2 || st.MaxQueuedData != 5 {
		t.Fatalf("stats shed=%d maxq=%d, want 2 and 5", st.Shed, st.MaxQueuedData)
	}
}

// TestSchedDRRSharesByCost pins byte-share fairness: with one client
// queueing big reads and one queueing small ops, dequeue order
// interleaves so the cheap client is not starved behind the expensive
// one.
func TestSchedDRRSharesByCost(t *testing.T) {
	s := stepSched(SchedConfig{QueueLimit: 1000, Quantum: 8})
	big := s.register(nil, nil, ServeOptions{})
	small := s.register(nil, nil, ServeOptions{})
	for i := 0; i < 16; i++ {
		s.enqueue(big, proto.Read{FH: 1, N: 128 << 10}, uint32(i), nil) // cost 9
	}
	for i := 0; i < 16; i++ {
		s.enqueue(small, proto.Locate{Path: "/f"}, uint32(i), nil) // cost 1
	}
	// Drain the first 12 jobs; the small client must appear well before
	// the big backlog is done.
	smallSeen := 0
	for i := 0; i < 12; i++ {
		j, ok := stepNext(s)
		if !ok {
			t.Fatalf("queue dried up at %d", i)
		}
		if j.c == small {
			smallSeen++
		}
	}
	if smallSeen < 6 {
		t.Fatalf("small client got %d of first 12 dequeues; starved behind big reads", smallSeen)
	}
}

// TestSchedUnregisterDropsQueuedAndDrains pins the Serve contract under
// the scheduler: unregister discards a dead connection's queued jobs
// and blocks until its running handlers return.
func TestSchedUnregisterDropsQueuedAndDrains(t *testing.T) {
	s := stepSched(SchedConfig{QueueLimit: 100})
	c := s.register(nil, nil, ServeOptions{})
	for i := 0; i < 5; i++ {
		s.enqueue(c, proto.Locate{Path: "/f"}, uint32(i), nil)
	}
	j, ok := stepNext(s) // one job "running"
	if !ok {
		t.Fatal("no job")
	}
	done := make(chan struct{})
	go func() {
		s.unregister(c)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("unregister returned with a handler still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	stepFinish(s, j)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("unregister never returned after handlers drained")
	}
	if st := s.Stats(); st.QueuedData != 0 || st.InFlight != 0 || st.Clients != 0 {
		t.Fatalf("post-unregister stats: %+v", st)
	}
	if _, ok := stepNext(s); ok {
		t.Fatal("dequeued a job from an unregistered client")
	}
}

// TestSchedServeRepliesRetryAfter runs the full scheduled Serve path
// over a real connection: a stalled worker pool and a tiny queue must
// produce RetryAfter replies on the wire while admitted requests still
// answer after the stall clears.
func TestSchedServeRepliesRetryAfter(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	lis, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedConfig{Workers: 1, QueueLimit: 1, RetryAfterMillis: 40})
	defer sched.Close()
	release := make(chan struct{})
	var served atomic.Int64
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		Serve(conn, func(m proto.Message, r Responder) proto.Message {
			<-release
			served.Add(1)
			return proto.StatOK{Exists: true}
		}, ServeOptions{Sched: sched})
	}()

	mc, err := Dial(net, "srv", Options{MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	var wg sync.WaitGroup
	results := make([]proto.Message, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := mc.Call(proto.Stat{Path: "/f"}, 5*time.Second)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			results[i] = reply
		}(i)
	}
	// Let the calls pile up: 1 running + 1 queued, the rest shed.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	var sheds, oks int
	for i, reply := range results {
		switch m := reply.(type) {
		case proto.RetryAfter:
			sheds++
			if m.Millis < 20 || m.Millis > 60 {
				t.Errorf("call %d: shed hint %d ms outside jitter bounds for base 40", i, m.Millis)
			}
		case proto.StatOK:
			oks++
		default:
			t.Errorf("call %d: unexpected reply %#v", i, reply)
		}
	}
	if sheds == 0 {
		t.Fatalf("no RetryAfter replies across 8 calls (oks=%d); queue never shed", oks)
	}
	if oks < 1 {
		t.Fatalf("no call served; admitted requests lost (sheds=%d)", sheds)
	}
	if oks+sheds != 8 {
		t.Fatalf("oks=%d sheds=%d, want them to cover all 8 calls", oks, sheds)
	}
	if got := served.Load(); int(got) != oks {
		t.Fatalf("handler ran %d times but %d OK replies arrived", got, oks)
	}
}

// TestSchedDispatchAllocsNothing is the CI gate for the uncontended
// dispatch path: once the job rings are warm, enqueue → dequeue →
// finish must allocate nothing. The decoded message is boxed once at
// frame decode (outside this path) and rides the ring by value.
func TestSchedDispatchAllocsNothing(t *testing.T) {
	s := stepSched(SchedConfig{QueueLimit: 1024})
	c := s.register(nil, nil, ServeOptions{})
	var m proto.Message = proto.Read{FH: 7, Off: 0, N: 64 << 10}
	// Warm the rings and histograms.
	for i := 0; i < 32; i++ {
		s.enqueue(c, m, 7, nil)
	}
	for {
		j, ok := stepNext(s)
		if !ok {
			break
		}
		stepFinish(s, j)
	}
	avg := testing.AllocsPerRun(100, func() {
		if shedded, _ := s.enqueue(c, m, 7, nil); shedded {
			t.Fatal("uncontended enqueue shed")
		}
		j, ok := stepNext(s)
		if !ok {
			t.Fatal("no job after enqueue")
		}
		stepFinish(s, j)
	})
	if avg != 0 {
		t.Fatalf("scheduled dispatch allocates %.1f objects per op, want 0", avg)
	}
}

// BenchmarkSchedDispatch measures the scheduler's enqueue→dequeue→
// finish cycle; ReportAllocs documents the 0 allocs/op claim in CI.
func BenchmarkSchedDispatch(b *testing.B) {
	s := stepSched(SchedConfig{QueueLimit: 1024})
	c := s.register(nil, nil, ServeOptions{})
	var m proto.Message = proto.Read{FH: 7, Off: 0, N: 64 << 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.enqueue(c, m, 7, nil)
		j, _ := stepNext(s)
		stepFinish(s, j)
	}
}
