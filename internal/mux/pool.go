package mux

import (
	"sync"

	"scalla/internal/transport"
)

// Pool shares one multiplexed Conn per remote address, so every caller
// talking to the same server — all File handles, all walks — pipelines
// over a single socket instead of serializing on private ones.
type Pool struct {
	net transport.Network
	opt Options

	mu    sync.Mutex
	conns map[string]*Conn
}

// NewPool returns an empty pool dialing over net with the given
// per-connection options.
func NewPool(net transport.Network, opt Options) *Pool {
	return &Pool{net: net, opt: opt, conns: make(map[string]*Conn)}
}

// Get returns the pooled connection to addr, dialing one if none
// exists or the cached one has died. Concurrent Gets for one address
// share a single connection.
func (p *Pool) Get(addr string) (*Conn, error) {
	p.mu.Lock()
	if mc, ok := p.conns[addr]; ok {
		if mc.Err() == nil {
			p.mu.Unlock()
			return mc, nil
		}
		delete(p.conns, addr)
	}
	p.mu.Unlock()

	mc, err := Dial(p.net, addr, p.opt)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if existing, ok := p.conns[addr]; ok && existing.Err() == nil {
		p.mu.Unlock()
		mc.Close()
		return existing, nil
	}
	p.conns[addr] = mc
	p.mu.Unlock()
	return mc, nil
}

// Drop closes mc and removes it from the pool if it is still the
// cached connection for addr. Dropping a connection another goroutine
// already replaced is a no-op beyond closing mc.
func (p *Pool) Drop(addr string, mc *Conn) {
	p.mu.Lock()
	if p.conns[addr] == mc {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	mc.Close()
}

// Close tears down every pooled connection, failing their in-flight
// streams with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = make(map[string]*Conn)
	p.mu.Unlock()
	for _, mc := range conns {
		mc.Close()
	}
}
