package mux

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"scalla/internal/proto"
	"scalla/internal/transport"
)

// reorderServer accepts one connection and answers Stat requests with
// StatOK{Size: <per-path token>}, shuffling replies within batches so
// responses leave the server out of order. Paths named "/black-hole"
// are swallowed (never answered) until release is closed, after which
// their replies are sent late.
func reorderServer(t *testing.T, net transport.Network, addr string, batch int, release <-chan struct{}) {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		type req struct {
			sid  uint32
			size int64
		}
		var (
			mu   sync.Mutex
			held []req
		)
		rng := rand.New(rand.NewSource(42))
		pending := make([]req, 0, batch)
		flush := func() {
			rng.Shuffle(len(pending), func(i, j int) {
				pending[i], pending[j] = pending[j], pending[i]
			})
			for _, r := range pending {
				transport.SendMessageStream(conn, proto.StatOK{Exists: true, Size: r.size}, r.sid)
			}
			pending = pending[:0]
		}
		if release != nil {
			go func() {
				<-release
				mu.Lock()
				for _, r := range held {
					transport.SendMessageStream(conn, proto.StatOK{Exists: true, Size: r.size}, r.sid)
				}
				held = nil
				mu.Unlock()
			}()
		}
		for {
			frame, err := conn.Recv()
			if err != nil {
				return
			}
			m, sid, err := proto.UnmarshalStream(frame)
			if err != nil {
				return
			}
			st, ok := m.(proto.Stat)
			if !ok {
				continue
			}
			if st.Path == "/black-hole" {
				mu.Lock()
				held = append(held, req{sid: sid, size: -1})
				mu.Unlock()
				continue
			}
			var size int64
			fmt.Sscanf(st.Path, "/f%d", &size)
			pending = append(pending, req{sid: sid, size: size})
			if len(pending) >= batch {
				flush()
			}
		}
	}()
}

// TestConcurrentCallsSurviveReordering drives 64 goroutines over one
// shared multiplexed connection against a server that shuffles its
// replies, checking every caller gets the reply for its own stream.
func TestConcurrentCallsSurviveReordering(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	reorderServer(t, net, "srv", 8, nil)
	mc, err := Dial(net, "srv", Options{MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	const goroutines = 64
	const perG = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				token := g*perG + i
				reply, err := mc.Call(proto.Stat{Path: fmt.Sprintf("/f%d", token)}, 10*time.Second)
				if err != nil {
					errs <- err
					return
				}
				ok, isOK := reply.(proto.StatOK)
				if !isOK {
					errs <- fmt.Errorf("token %d: got %T", token, reply)
					return
				}
				if ok.Size != int64(token) {
					errs <- fmt.Errorf("token %d: reply routed to wrong stream (size %d)", token, ok.Size)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStreamTimeoutLeavesOthersRunning expires one stream's deadline
// while other streams on the same connection keep completing, then
// releases the late reply and checks it is discarded without
// disturbing later calls.
func TestStreamTimeoutLeavesOthersRunning(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	release := make(chan struct{})
	reorderServer(t, net, "srv", 1, release)
	mc, err := Dial(net, "srv", Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	stuck, err := mc.Start(proto.Stat{Path: "/black-hole"})
	if err != nil {
		t.Fatal(err)
	}
	// Other streams proceed while the black-holed one is pending.
	for i := 0; i < 4; i++ {
		reply, err := mc.Call(proto.Stat{Path: fmt.Sprintf("/f%d", i)}, 5*time.Second)
		if err != nil {
			t.Fatalf("concurrent call %d: %v", i, err)
		}
		if ok := reply.(proto.StatOK); ok.Size != int64(i) {
			t.Fatalf("concurrent call %d: size %d", i, ok.Size)
		}
	}
	if _, err := stuck.Wait(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("stuck.Wait = %v, want ErrTimeout", err)
	}
	if mc.Err() != nil {
		t.Fatalf("per-stream timeout killed the connection: %v", mc.Err())
	}
	// Release the late reply; the demultiplexer must drop it and keep
	// serving fresh streams.
	close(release)
	reply, err := mc.Call(proto.Stat{Path: "/f99"}, 5*time.Second)
	if err != nil {
		t.Fatalf("call after late reply: %v", err)
	}
	if ok := reply.(proto.StatOK); ok.Size != 99 {
		t.Fatalf("late reply leaked into a fresh stream: size %d", ok.Size)
	}
}

// TestConnDeathFailsAllStreams kills the transport under a pile of
// in-flight streams and checks each fails with an error matching
// ErrClosed, and that new calls fail fast.
func TestConnDeathFailsAllStreams(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
		for { // swallow requests, never answer
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()

	mc, err := Dial(net, "srv", Options{MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	const inflight = 16
	calls := make([]*Call, inflight)
	for i := range calls {
		if calls[i], err = mc.Start(proto.Ping{}); err != nil {
			t.Fatal(err)
		}
	}
	(<-accepted).Close()

	for i, ca := range calls {
		if _, err := ca.Wait(10 * time.Second); !errors.Is(err, ErrClosed) {
			t.Errorf("stream %d: err = %v, want ErrClosed", i, err)
		}
	}
	if _, err := mc.Call(proto.Ping{}, time.Second); !errors.Is(err, ErrClosed) {
		t.Errorf("call on dead conn: err = %v, want ErrClosed", err)
	}
	if mc.Err() == nil {
		t.Error("Err() = nil on a dead connection")
	}
}

// TestPoolSharesAndReplacesConns checks the keyed pool hands every
// caller the same live connection and replaces it once it dies.
func TestPoolSharesAndReplacesConns(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	reorderServer(t, net, "srv", 1, nil)
	p := NewPool(net, Options{})
	defer p.Close()

	a, err := p.Get("srv")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get("srv")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("pool handed out two connections for one address")
	}
	p.Drop("srv", a)
	if a.Err() == nil {
		t.Fatal("dropped connection not closed")
	}
}

// TestInFlightWindowBackpressure checks Start blocks once MaxInFlight
// streams are outstanding and unblocks as slots free.
func TestInFlightWindowBackpressure(t *testing.T) {
	net := transport.NewInProc(transport.InProcConfig{})
	release := make(chan struct{})
	reorderServer(t, net, "srv", 1, release)
	mc, err := Dial(net, "srv", Options{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	c1, err := mc.Start(proto.Stat{Path: "/black-hole"})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := mc.Start(proto.Stat{Path: "/black-hole"})
	if err != nil {
		t.Fatal(err)
	}
	third := make(chan struct{})
	go func() {
		ca, err := mc.Start(proto.Stat{Path: "/f1"})
		if err == nil {
			ca.Cancel()
		}
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("third Start did not block on a full window")
	case <-time.After(50 * time.Millisecond):
	}
	c1.Cancel() // frees a slot
	select {
	case <-third:
	case <-time.After(5 * time.Second):
		t.Fatal("Start stayed blocked after a slot freed")
	}
	c2.Cancel()
}
