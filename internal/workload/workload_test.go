package workload

import (
	"testing"
	"time"

	"scalla"
	"scalla/internal/client"
)

// clusterPlacer adapts a scalla.Cluster to the Placer interface.
type clusterPlacer struct{ c *scalla.Cluster }

func (p clusterPlacer) Servers() int { return len(p.c.Servers) }
func (p clusterPlacer) Place(i int, path string, data []byte) error {
	return p.c.Store(i).Put(path, data)
}

func testCluster(t *testing.T) *scalla.Cluster {
	t.Helper()
	c, err := scalla.StartCluster(scalla.Options{
		Servers:    4,
		FullDelay:  150 * time.Millisecond,
		FastPeriod: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestPlaceDataset(t *testing.T) {
	c := testCluster(t)
	paths, err := PlaceDataset(clusterPlacer{c}, DatasetConfig{
		Files: 40, Replicas: 2, SizeBytes: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 40 {
		t.Fatalf("paths = %d", len(paths))
	}
	// Each file must exist on exactly 2 servers.
	for _, p := range paths {
		n := 0
		for i := 0; i < 4; i++ {
			if c.Store(i).Has(p) {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("%s on %d servers, want 2", p, n)
		}
	}
}

func TestPlaceDatasetClampsReplicas(t *testing.T) {
	c := testCluster(t)
	paths, err := PlaceDataset(clusterPlacer{c}, DatasetConfig{
		Files: 3, Replicas: 99, SizeBytes: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		n := 0
		for i := 0; i < 4; i++ {
			if c.Store(i).Has(p) {
				n++
			}
		}
		if n != 4 {
			t.Fatalf("%s on %d servers, want all 4", p, n)
		}
	}
}

func TestGenerateJobsShape(t *testing.T) {
	dataset := make([]string, 100)
	for i := range dataset {
		dataset[i] = "/f" + string(rune('a'+i%26))
	}
	jobs := GenerateJobs(dataset, 10, JobConfig{FilesPerJob: 24}, 3)
	if len(jobs) != 10 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if len(j.Paths) != 24 {
			t.Fatalf("job %d touches %d files", j.ID, len(j.Paths))
		}
	}
	// Determinism.
	again := GenerateJobs(dataset, 10, JobConfig{FilesPerJob: 24}, 3)
	for i := range jobs {
		for k := range jobs[i].Paths {
			if jobs[i].Paths[k] != again[i].Paths[k] {
				t.Fatal("job generation not deterministic")
			}
		}
	}
}

func TestRunnerBulkCreates(t *testing.T) {
	c := testCluster(t)
	paths, err := PlaceDataset(clusterPlacer{c}, DatasetConfig{
		Files: 8, Replicas: 1, SizeBytes: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := JobConfig{FilesPerJob: 2, MetaOpsPerFile: 1, CreatesPerJob: 3, PrepareCreates: true}
	jobs := GenerateJobs(paths, 4, cfg, 9)
	rn := Runner{
		NewClient:   func() *client.Client { return c.NewClient() },
		Concurrency: 2,
		Cfg:         cfg,
	}
	st := rn.Run(jobs)
	if st.Creates != 12 {
		t.Errorf("Creates = %d, want 12", st.Creates)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d", st.Errors)
	}
	// The outputs really exist cluster-wide.
	cl := c.NewClient()
	defer cl.Close()
	if _, err := cl.Stat("/out/job00000/part000"); err != nil {
		t.Errorf("created output missing: %v", err)
	}
}

func TestRunnerEndToEnd(t *testing.T) {
	c := testCluster(t)
	paths, err := PlaceDataset(clusterPlacer{c}, DatasetConfig{
		Files: 30, Replicas: 2, SizeBytes: 4096, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := GenerateJobs(paths, 12, JobConfig{FilesPerJob: 6, MetaOpsPerFile: 3, ReadBytes: 1024}, 5)
	rn := Runner{
		NewClient:   func() *client.Client { return c.NewClient() },
		Concurrency: 4,
		Cfg:         JobConfig{FilesPerJob: 6, MetaOpsPerFile: 3, ReadBytes: 1024},
	}
	st := rn.Run(jobs)
	if st.Jobs != 12 {
		t.Errorf("Jobs = %d", st.Jobs)
	}
	wantMeta := int64(12 * 6 * 3)
	if st.MetaOps != wantMeta {
		t.Errorf("MetaOps = %d, want %d", st.MetaOps, wantMeta)
	}
	if st.Opens != 12*6 {
		t.Errorf("Opens = %d, want 72", st.Opens)
	}
	if st.BytesRead != 12*6*1024 {
		t.Errorf("BytesRead = %d", st.BytesRead)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d", st.Errors)
	}
	if st.TxPerSec() <= 0 {
		t.Error("TxPerSec = 0")
	}
	if st.MetaLat.Count != wantMeta {
		t.Errorf("MetaLat.Count = %d", st.MetaLat.Count)
	}
}
