// Package workload generates and drives the access pattern that
// motivated Scalla (paper Section II-A): analysis frameworks that
// perform "several meta-data operations on dozens of files per job"
// before reading, at thousands of transactions per second across the
// cluster, over large replicated datasets.
package workload

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"scalla/internal/client"
	"scalla/internal/metrics"
)

// DatasetConfig describes a synthetic dataset placement.
type DatasetConfig struct {
	// Files is the number of distinct files.
	Files int
	// Replicas is how many servers hold each file.
	Replicas int
	// SizeBytes is each file's payload size.
	SizeBytes int
	// PathPrefix roots the dataset namespace. Default "/store/dataset".
	PathPrefix string
	// Seed makes placement deterministic.
	Seed int64
}

// Placer abstracts "put these bytes on server i" so the generator works
// against any cluster shape (the scalla.Cluster facade satisfies it via
// a small adapter).
type Placer interface {
	// Servers returns the number of data servers.
	Servers() int
	// Place stores data at path on server index i.
	Place(i int, path string, data []byte) error
}

// PlaceDataset synthesizes the dataset and spreads it (with replicas)
// across the placer's servers. It returns the file paths.
func PlaceDataset(p Placer, cfg DatasetConfig) ([]string, error) {
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/store/dataset"
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > p.Servers() {
		cfg.Replicas = p.Servers()
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	payload := make([]byte, cfg.SizeBytes)
	r.Read(payload)
	paths := make([]string, cfg.Files)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s/run%03d/file-%06d.root", cfg.PathPrefix, i%50, i)
		first := r.Intn(p.Servers())
		for rep := 0; rep < cfg.Replicas; rep++ {
			if err := p.Place((first+rep)%p.Servers(), paths[i], payload); err != nil {
				return nil, err
			}
		}
	}
	return paths, nil
}

// JobConfig shapes one analysis job.
type JobConfig struct {
	// FilesPerJob is how many dataset files a job touches ("dozens").
	FilesPerJob int
	// MetaOpsPerFile is the stat/locate operations issued per file
	// before any data is read ("several meta-data operations").
	MetaOpsPerFile int
	// ReadBytes is how much of each file the job reads (0 = none).
	ReadBytes int
	// CreatesPerJob makes each job create that many fresh output files
	// — the "bulk file creations" mode the paper says the design
	// targets (Section III-B2). Creators should Prepare first; the
	// runner does when PrepareCreates is set.
	CreatesPerJob int
	// PrepareCreates announces the output paths ahead of creation.
	PrepareCreates bool
	// ZipfS is the popularity exponent for file selection. Default 1.1,
	// the skew measured in scientific-data access studies.
	ZipfS float64
	// DriftEvery rotates the working set every that many file draws
	// (0 = static popularity); DriftStep is how far it rotates.
	DriftEvery int
	// DriftStep is the rotation distance per drift step. Default 1
	// when DriftEvery is set.
	DriftStep int
}

// Job is one unit of analysis work: the files it will touch.
type Job struct {
	ID    int
	Paths []string
}

// GenerateJobs deals nJobs jobs over the dataset, each touching
// cfg.FilesPerJob files chosen with bounded-Zipf popularity (hot files
// are touched more, like popular run ranges) and optional working-set
// drift — see NewZipf.
func GenerateJobs(dataset []string, nJobs int, cfg JobConfig, seed int64) []Job {
	s := cfg.ZipfS
	if s <= 0 {
		s = 1.1
	}
	z := NewZipf(len(dataset), s, seed)
	if cfg.DriftEvery > 0 {
		step := cfg.DriftStep
		if step <= 0 {
			step = 1
		}
		z.SetDrift(cfg.DriftEvery, step)
	}
	jobs := make([]Job, nJobs)
	for j := range jobs {
		jobs[j].ID = j
		jobs[j].Paths = make([]string, cfg.FilesPerJob)
		for k := range jobs[j].Paths {
			jobs[j].Paths[k] = dataset[z.Next()]
		}
	}
	return jobs
}

// Stats aggregates a run's results.
type Stats struct {
	Jobs      int
	MetaOps   int64
	Opens     int64
	Creates   int64
	BytesRead int64
	Errors    int64
	Elapsed   time.Duration
	MetaLat   metrics.Snapshot
	OpenLat   metrics.Snapshot
}

// TxPerSec is the cluster-wide metadata transaction rate the paper's
// motivation cites ("sustain thousands of transactions per second").
func (s Stats) TxPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.MetaOps+s.Opens+s.Creates) / s.Elapsed.Seconds()
}

// Runner drives jobs against a cluster with a fixed concurrency,
// mimicking a batch farm.
type Runner struct {
	// NewClient supplies one client per concurrent worker.
	NewClient func() *client.Client
	// Concurrency is the number of simultaneous jobs. Default 8.
	Concurrency int
	// Cfg shapes each job's behaviour.
	Cfg JobConfig
}

// Run executes all jobs and aggregates statistics.
func (rn Runner) Run(jobs []Job) Stats {
	conc := rn.Concurrency
	if conc <= 0 {
		conc = 8
	}
	var (
		metaLat, openLat metrics.Histogram
		stats            Stats
		mu               sync.Mutex
		wg               sync.WaitGroup
	)
	work := make(chan Job)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := rn.NewClient()
			defer cl.Close()
			var meta, opens, creates, bytesRead, errs int64
			for job := range work {
				// Bulk output creation (optionally prepared first).
				if rn.Cfg.CreatesPerJob > 0 {
					outs := make([]string, rn.Cfg.CreatesPerJob)
					for k := range outs {
						outs[k] = fmt.Sprintf("/out/job%05d/part%03d", job.ID, k)
					}
					if rn.Cfg.PrepareCreates {
						if err := cl.Prepare(outs, true); err != nil {
							errs++
						}
					}
					for _, o := range outs {
						if err := cl.WriteFile(o, []byte("output")); err != nil {
							errs++
						}
						creates++
					}
				}
				for _, p := range job.Paths {
					// The framework's metadata phase.
					for op := 0; op < rn.Cfg.MetaOpsPerFile; op++ {
						t0 := time.Now()
						var err error
						if op%2 == 0 {
							_, err = cl.Stat(p)
						} else {
							_, err = cl.Locate(p, false)
						}
						metaLat.Observe(time.Since(t0))
						meta++
						if err != nil {
							errs++
						}
					}
					// The data phase.
					if rn.Cfg.ReadBytes > 0 {
						t0 := time.Now()
						f, err := cl.Open(p)
						openLat.Observe(time.Since(t0))
						opens++
						if err != nil {
							errs++
							continue
						}
						buf := make([]byte, rn.Cfg.ReadBytes)
						n, rerr := f.ReadAt(buf, 0)
						if rerr != nil && rerr != io.EOF {
							errs++
						}
						bytesRead += int64(n)
						f.Close()
					}
				}
			}
			mu.Lock()
			stats.MetaOps += meta
			stats.Opens += opens
			stats.Creates += creates
			stats.BytesRead += bytesRead
			stats.Errors += errs
			mu.Unlock()
		}()
	}
	for _, j := range jobs {
		work <- j
	}
	close(work)
	wg.Wait()
	stats.Jobs = len(jobs)
	stats.Elapsed = time.Since(start)
	stats.MetaLat = metaLat.Snapshot()
	stats.OpenLat = openLat.Snapshot()
	return stats
}
