package workload

import "testing"

// TestZipfDeterministic pins seed-reproducibility: two samplers with
// the same parameters emit identical streams.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(100, 1.1, 7)
	b := NewZipf(100, 1.1, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d vs %d", i, x, y)
		}
	}
}

// TestZipfShape checks the empirical frequencies track the power law:
// rank 1 over rank 2 should approach 2^s, and the head should carry
// far more mass than the tail.
func TestZipfShape(t *testing.T) {
	const n, draws = 50, 200000
	s := 1.1
	z := NewZipf(n, s, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// P(0)/P(1) = 2^1.1 ≈ 2.14; allow generous sampling noise.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.8 || ratio > 2.6 {
		t.Fatalf("rank-1/rank-2 frequency ratio %.2f, want ≈ 2.14", ratio)
	}
	head := counts[0] + counts[1] + counts[2]
	tail := counts[n-3] + counts[n-2] + counts[n-1]
	if head < 10*tail {
		t.Fatalf("head %d not dominating tail %d; distribution not Zipf-like", head, tail)
	}
}

// TestZipfBounds draws heavily and checks every index stays in range
// across drift rotations.
func TestZipfBounds(t *testing.T) {
	z := NewZipf(17, 0.8, 3) // s < 1 must work (math/rand's Zipf can't)
	z.SetDrift(10, 3)
	seen := make([]bool, 17)
	for i := 0; i < 50000; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 17 {
			t.Fatalf("draw %d out of range: %d", i, idx)
		}
		seen[idx] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d never drawn despite drift over 50k draws", i)
		}
	}
}

// TestZipfDriftMovesHotSet checks that with drift enabled the most
// popular index actually changes over time.
func TestZipfDriftMovesHotSet(t *testing.T) {
	const n = 20
	z := NewZipf(n, 1.2, 5)
	z.SetDrift(500, 7)
	hot := func(draws int) int {
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		return best
	}
	first := hot(400) // within the first drift window
	// Burn through several windows, then measure again.
	for i := 0; i < 3000; i++ {
		z.Next()
	}
	second := hot(400)
	if first == second {
		t.Fatalf("hot index did not move under drift: %d both times", first)
	}
}

// TestGenerateJobsUsesDataset sanity-checks the replacement generator:
// all paths valid, deterministic per seed.
func TestGenerateJobsUsesDataset(t *testing.T) {
	dataset := make([]string, 30)
	for i := range dataset {
		dataset[i] = string(rune('a' + i%26))
	}
	a := GenerateJobs(dataset, 10, JobConfig{FilesPerJob: 5}, 9)
	b := GenerateJobs(dataset, 10, JobConfig{FilesPerJob: 5}, 9)
	for j := range a {
		for k := range a[j].Paths {
			if a[j].Paths[k] != b[j].Paths[k] {
				t.Fatalf("job %d path %d differs across identical seeds", j, k)
			}
			if a[j].Paths[k] == "" {
				t.Fatalf("empty path in job %d", j)
			}
		}
	}
}
