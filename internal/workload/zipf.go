package workload

// A real bounded-Zipf sampler for the lifecycle workloads. The earlier
// generator approximated popularity skew by squaring a uniform draw;
// that shape is not a power law, so hit-rate numbers measured against
// it could not be compared to the cache literature. This sampler draws
// from the exact truncated Zipf distribution — P(rank k) ∝ 1/k^s over
// ranks 1..N — by inverse-CDF lookup on a precomputed cumulative
// table, which supports any s > 0 (math/rand's Zipf requires s > 1)
// and is deterministic per seed.
//
// Scientific-data access studies additionally observe working-set
// drift: which files are popular changes slowly as new run ranges
// arrive. SetDrift models that by rotating the rank→index mapping a
// fixed step every fixed number of draws, so the popularity shape
// stays Zipf while its support slides across the dataset.

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws dataset indices 0..N-1 with bounded-Zipf popularity and
// optional working-set drift. Not safe for concurrent use; give each
// generator goroutine its own sampler.
type Zipf struct {
	cdf    []float64 // cdf[k] = P(rank <= k), strictly increasing to 1
	r      *rand.Rand
	n      int
	offset int // current rank→index rotation
	every  int // draws between drift steps (0 = no drift)
	step   int // indices rotated per drift step
	draws  int
}

// NewZipf returns a sampler over n items with exponent s, seeded for
// reproducibility. s must be positive; larger s concentrates more
// probability on the lowest ranks (s≈1.1 matches measured
// scientific-data popularity).
func NewZipf(n int, s float64, seed int64) *Zipf {
	if n <= 0 {
		panic("workload: NewZipf needs n > 0")
	}
	if s <= 0 {
		panic("workload: NewZipf needs s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, r: rand.New(rand.NewSource(seed)), n: n}
}

// SetDrift makes the working set slide: every `every` draws the
// rank→index mapping rotates by `step` positions, so yesterday's
// hottest file cools off while staying inside the dataset. every <= 0
// disables drift.
func (z *Zipf) SetDrift(every, step int) {
	z.every = every
	z.step = step
}

// Next draws one dataset index.
func (z *Zipf) Next() int {
	if z.every > 0 {
		z.draws++
		if z.draws%z.every == 0 {
			z.offset = (z.offset + z.step) % z.n
		}
	}
	u := z.r.Float64()
	rank := sort.SearchFloat64s(z.cdf, u)
	if rank >= z.n {
		rank = z.n - 1
	}
	return (rank + z.offset) % z.n
}
