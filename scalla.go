// Package scalla is a from-scratch Go implementation of Scalla — the
// Structured Cluster Architecture for Low Latency Access (Hanushevsky &
// Wang, IPDPS 2012), the architecture behind XRootD/cmsd.
//
// A Scalla cluster is a 64-ary tree of nodes: a manager (head node,
// optionally replicated), supervisors (interior redirectors), and data
// servers (leaves). Clients contact the manager, which locates files by
// flooding positive-response-only queries down the tree, caches the
// answers in its location cache, and redirects clients to a selected
// server. The package wires the internal subsystems (location cache,
// fast response queue, membership, transports, data servers) into a
// small public API:
//
//	cl, _ := scalla.StartCluster(scalla.Options{Servers: 8})
//	defer cl.Stop()
//	cl.Store(3).Put("/store/a.root", data)
//	c := cl.NewClient()
//	f, _ := c.Open("/store/a.root")
//
// Everything runs over an in-process network by default; pass a
// transport.TCP()-backed network via Options.Net (or run cmd/scallad)
// to deploy over real sockets.
package scalla

import (
	"errors"
	"fmt"
	"time"

	"scalla/internal/cache"
	"scalla/internal/client"
	"scalla/internal/cluster"
	"scalla/internal/cmsd"
	"scalla/internal/nsd"
	"scalla/internal/obs"
	"scalla/internal/pcache"
	"scalla/internal/proto"
	"scalla/internal/respq"
	"scalla/internal/store"
	"scalla/internal/transport"
)

// Re-exported client types and errors — the surface applications code
// against.
type (
	// Client is a Scalla client handle; see internal/client.
	Client = client.Client
	// File is an open remote file with transparent refresh recovery.
	File = client.File
	// Node is one running Scalla daemon (manager, supervisor, or
	// server).
	Node = cmsd.Node
)

// Errors surfaced by the client API.
var (
	ErrNotExist = client.ErrNotExist
	ErrExist    = client.ErrExist
	ErrIO       = client.ErrIO
	ErrTimeout  = client.ErrTimeout
)

// SelectionPolicy picks among multiple servers holding a file.
type SelectionPolicy = cluster.Policy

// Selection policies (paper Section II-B3: "load, selection frequency,
// space, etc.").
const (
	ByLoad      = cluster.ByLoad
	BySpace     = cluster.BySpace
	ByFrequency = cluster.ByFrequency
	RoundRobin  = cluster.RoundRobin
)

// Options configures StartCluster.
type Options struct {
	// Servers is the number of data servers. Required.
	Servers int
	// ManagerReplicas is the number of head nodes. Every subordinate
	// logs into all of them ("the logical head node … can be one of
	// many", Section II-B2) and clients fail over between them.
	// Default 1.
	ManagerReplicas int
	// Fanout is the maximum subordinates per node — the paper's cluster
	// set size. Default 64 (the paper's value); benchmarks shrink it to
	// build deep trees cheaply.
	Fanout int
	// Net is the transport. Default: a fresh in-process network.
	Net transport.Network
	// Prefixes are the path prefixes every server exports. Default "/".
	Prefixes []string
	// FullDelay is the paper's 5-second full delay. Default 5 s.
	FullDelay time.Duration
	// FastPeriod is the fast-response window. Default 133 ms.
	FastPeriod time.Duration
	// Lifetime is the location-object lifetime Lt. Default 8 h.
	Lifetime time.Duration
	// StageDelay simulates Mass Storage System staging time.
	StageDelay time.Duration
	// StoreRoot, when set, gives every server a disk-backed store
	// under <StoreRoot>/srvN (see STORAGE.md). Empty keeps the
	// in-memory backend.
	StoreRoot string
	// StoreFsync is the disk backend's fsync policy (used only with
	// StoreRoot). Default store.FsyncInterval.
	StoreFsync store.FsyncPolicy
	// ReadPolicy and WritePolicy select among file holders.
	ReadPolicy  SelectionPolicy
	WritePolicy SelectionPolicy
	// PingInterval paces liveness/load probes. Default 1 s.
	PingInterval time.Duration
	// MissedPings is how many ping intervals a subordinate may stay
	// silent before its redirector evicts it as dead (see
	// cmsd.NodeConfig.MissedPings). Default 5.
	MissedPings int
	// DropDelay is how long a disconnected member keeps its membership
	// slot before being dropped (see cluster.Config.DropDelay).
	// Default 10 min.
	DropDelay time.Duration
	// ReconnectDelay is the base of the subordinate redial backoff.
	// Default 50 ms.
	ReconnectDelay time.Duration
	// RejoinSpread bounds the re-login storm after a parent restart by
	// staggering each child's first redial by its slot index (see
	// cmsd.NodeConfig.RejoinSpread). Default 4× ReconnectDelay;
	// negative disables.
	RejoinSpread time.Duration
	// Tracer, if set, records resolution spans on every redirector node
	// (and is where a faults.Network should send its fault spans, so
	// /tracez interleaves injections with the resolutions they disturb).
	Tracer *obs.Tracer
	// RespondAlways switches servers to the explicit-negative protocol
	// baseline (experiment E10 only).
	RespondAlways bool
}

func (o Options) withDefaults() Options {
	if o.ManagerReplicas <= 0 {
		o.ManagerReplicas = 1
	}
	if o.Fanout <= 0 {
		o.Fanout = 64
	}
	if o.Net == nil {
		o.Net = transport.NewInProc(transport.InProcConfig{})
	}
	if len(o.Prefixes) == 0 {
		o.Prefixes = []string{"/"}
	}
	if o.FullDelay <= 0 {
		o.FullDelay = 5 * time.Second
	}
	if o.FastPeriod <= 0 {
		o.FastPeriod = respq.DefaultPeriod
	}
	return o
}

// Cluster is a running Scalla tree plus handles to its pieces.
type Cluster struct {
	opts Options

	// Net is the network the cluster runs on; clients must dial
	// through it.
	Net transport.Network
	// Manager is the first head node.
	Manager *Node
	// Managers holds every head-node replica (Managers[0] == Manager).
	Managers []*Node
	// Supervisors are the interior redirectors, top level first.
	Supervisors []*Node
	// Servers are the leaf data servers.
	Servers []*Node

	stores        []*store.Store
	serverCfgs    []cmsd.NodeConfig // for RestartServer
	expectedLinks int               // total parent links the tree should establish
}

// StartCluster builds and starts a Scalla tree with the given shape:
// the minimum number of supervisor levels such that no node has more
// than Fanout subordinates (Figure 1's organization).
func StartCluster(o Options) (*Cluster, error) {
	o = o.withDefaults()
	if o.Servers <= 0 {
		return nil, errors.New("scalla: Options.Servers must be positive")
	}
	c := &Cluster{opts: o, Net: o.Net}

	// Compute the supervisor level widths bottom-up: each level must
	// fan its subordinates out at no more than Fanout per node, so a
	// level of width w needs ceil(w/Fanout) parents above it. widths
	// ends up ordered top (just under the managers) to bottom.
	var widths []int
	for n := o.Servers; n > o.Fanout; {
		n = (n + o.Fanout - 1) / o.Fanout
		widths = append([]int{n}, widths...)
	}

	// coreFor parameterizes one redirector level: levels counts the
	// redirector tiers at or below that core (1 = leaf supervisor), and
	// scales its processing deadline so a deep subtree's legitimate
	// resolution time never reads as definitive not-found upstream
	// (cmsd.Config.Levels, Section III-C1).
	coreFor := func(levels int) cmsd.Config {
		return cmsd.Config{
			Cache: cache.Config{Lifetime: o.Lifetime},
			Queue: respq.Config{Period: o.FastPeriod},
			// Capacity=Fanout makes each cell actually fill at the
			// planned width, so cell overflow engages at any scale, not
			// only at the wire's 64-member ceiling.
			Cluster:     cluster.Config{DropDelay: o.DropDelay, Capacity: o.Fanout},
			FullDelay:   o.FullDelay,
			Levels:      levels,
			ReadPolicy:  o.ReadPolicy,
			WritePolicy: o.WritePolicy,
		}
	}

	// Head node replicas: every direct subordinate logs into all of
	// them ("the logical head node … can be one of many", II-B2).
	topParents := make([]string, 0, o.ManagerReplicas)
	for r := 0; r < o.ManagerReplicas; r++ {
		name := fmt.Sprintf("mgr%d", r)
		mgr, err := c.startNode(cmsd.NodeConfig{
			Name: name, Role: proto.RoleManager,
			DataAddr: name + ":data", CtlAddr: name + ":ctl",
			Net: o.Net, Core: coreFor(len(widths) + 1), PingInterval: o.PingInterval,
			MissedPings: o.MissedPings, ReconnectDelay: o.ReconnectDelay,
			RejoinSpread: o.RejoinSpread,
			Tracer:       o.Tracer,
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Managers = append(c.Managers, mgr)
		topParents = append(topParents, name+":ctl")
	}
	c.Manager = c.Managers[0]

	// parents holds, per slot at the current level, the set of parent
	// control addresses a subordinate there must log into. The top
	// level is replicated (all managers); lower levels have one parent.
	parents := [][]string{topParents}
	for level, width := range widths {
		next := make([][]string, 0, width)
		for i := 0; i < width; i++ {
			name := fmt.Sprintf("sup%d-%d", level+1, i)
			sup, err := c.startNode(cmsd.NodeConfig{
				Name: name, Role: proto.RoleSupervisor,
				DataAddr: name + ":data", CtlAddr: name + ":ctl",
				Parents: parents[i%len(parents)], Prefixes: o.Prefixes,
				Net: o.Net, Core: coreFor(len(widths) - level), PingInterval: o.PingInterval,
				MissedPings: o.MissedPings, ReconnectDelay: o.ReconnectDelay,
				RejoinSpread: o.RejoinSpread,
				Tracer:       o.Tracer,
			})
			if err != nil {
				c.Stop()
				return nil, err
			}
			c.Supervisors = append(c.Supervisors, sup)
			c.expectedLinks += len(parents[i%len(parents)])
			next = append(next, []string{name + ":ctl"})
		}
		parents = next
	}

	for i := 0; i < o.Servers; i++ {
		scfg := store.Config{StageDelay: o.StageDelay}
		if o.StoreRoot != "" {
			scfg.Root = fmt.Sprintf("%s/srv%d", o.StoreRoot, i)
			scfg.Fsync = o.StoreFsync
		}
		st, err := store.Open(scfg)
		if err != nil {
			c.Stop()
			return nil, err
		}
		name := fmt.Sprintf("srv%d", i)
		cfg := cmsd.NodeConfig{
			Name: name, Role: proto.RoleServer,
			DataAddr: name + ":data",
			Parents:  parents[i%len(parents)],
			Prefixes: o.Prefixes,
			Net:      o.Net, Store: st,
			RespondAlways:  o.RespondAlways,
			PingInterval:   o.PingInterval,
			ReconnectDelay: o.ReconnectDelay,
			RejoinSpread:   o.RejoinSpread,
		}
		srv, err := c.startNode(cfg)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
		c.stores = append(c.stores, st)
		c.serverCfgs = append(c.serverCfgs, cfg)
		c.expectedLinks += len(parents[i%len(parents)])
	}

	if err := c.WaitFormed(30 * time.Second); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) startNode(cfg cmsd.NodeConfig) (*Node, error) {
	if cfg.ReconnectDelay == 0 {
		cfg.ReconnectDelay = 50 * time.Millisecond
	}
	n, err := cmsd.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.Start(); err != nil {
		return nil, err
	}
	return n, nil
}

// WaitFormed blocks until every server and supervisor has logged into
// all of its parents.
func (c *Cluster) WaitFormed(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		up := 0
		for _, s := range c.Servers {
			up += s.ParentsUp()
		}
		for _, s := range c.Supervisors {
			up += s.ParentsUp()
		}
		if up == c.expectedLinks {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("scalla: cluster did not form: %d/%d links up",
				up, c.expectedLinks)
		}
		time.Sleep(time.Millisecond)
	}
}

// Stop shuts the whole tree down, leaves first, then closes the
// backing stores (disk-backed ones flush and release their fds).
func (c *Cluster) Stop() {
	for _, s := range c.Servers {
		s.Stop()
	}
	for i := len(c.Supervisors) - 1; i >= 0; i-- {
		c.Supervisors[i].Stop()
	}
	for _, m := range c.Managers {
		m.Stop()
	}
	for _, st := range c.stores {
		st.Close()
	}
}

// NewClient returns a client aimed at the cluster's managers (all
// replicas). Callers own the client and should Close it.
func (c *Cluster) NewClient() *Client {
	addrs := make([]string, len(c.Managers))
	for i, m := range c.Managers {
		addrs[i] = m.DataAddr()
	}
	return client.New(client.Config{Net: c.Net, Managers: addrs})
}

// Store returns server i's backing store — tests and workload
// generators place files through it directly.
func (c *Cluster) Store(i int) *store.Store { return c.stores[i] }

// ManagerAddrs returns the data addresses of every head-node replica,
// in the order clients should try them.
func (c *Cluster) ManagerAddrs() []string {
	addrs := make([]string, len(c.Managers))
	for i, m := range c.Managers {
		addrs[i] = m.DataAddr()
	}
	return addrs
}

// CrashServer stops data server i abruptly (listeners closed, links
// dropped), simulating a node death. Its backing store and identity are
// preserved; RestartServer brings it back. Combine with a
// faults.Network Sever of its addresses to also cut in-flight frames.
func (c *Cluster) CrashServer(i int) {
	c.Servers[i].Stop()
}

// AddServer starts one brand-new data server after the cluster has
// formed, aimed at the head nodes like any other direct subordinate. If
// the manager's cell is already full, the login is vectored at a
// supervisor child via cell overflow (proto.LoginRedirect) and the
// newcomer converges to a deeper slot instead of redial-looping — this
// is how a 65th server joins a full 64-wide cell (DESIGN.md §12). The
// call returns once the node is started; use WaitFormed to block until
// its login (possibly after following redirects) lands.
func (c *Cluster) AddServer() (*Node, error) {
	i := len(c.Servers)
	scfg := store.Config{StageDelay: c.opts.StageDelay}
	if c.opts.StoreRoot != "" {
		scfg.Root = fmt.Sprintf("%s/srv%d", c.opts.StoreRoot, i)
		scfg.Fsync = c.opts.StoreFsync
	}
	st, err := store.Open(scfg)
	if err != nil {
		return nil, err
	}
	parents := make([]string, len(c.Managers))
	for r, m := range c.Managers {
		parents[r] = m.CtlAddr()
	}
	cfg := cmsd.NodeConfig{
		Name: fmt.Sprintf("srv%d", i), Role: proto.RoleServer,
		DataAddr: fmt.Sprintf("srv%d:data", i),
		Parents:  parents,
		Prefixes: c.opts.Prefixes,
		Net:      c.Net, Store: st,
		RespondAlways:  c.opts.RespondAlways,
		PingInterval:   c.opts.PingInterval,
		ReconnectDelay: c.opts.ReconnectDelay,
		RejoinSpread:   c.opts.RejoinSpread,
	}
	srv, err := c.startNode(cfg)
	if err != nil {
		st.Close()
		return nil, err
	}
	c.Servers = append(c.Servers, srv)
	c.stores = append(c.stores, st)
	c.serverCfgs = append(c.serverCfgs, cfg)
	c.expectedLinks += len(parents)
	return srv, nil
}

// RestartServer restarts a crashed data server with its original
// configuration and store. Logging back in under the same name reclaims
// the same membership slot; whether that counts as a new connect epoch
// is the table's call (same exports within the drop delay → locations
// stay valid; after a drop → new server, old cache bits cannot
// resurrect).
func (c *Cluster) RestartServer(i int) error {
	n, err := c.startNode(c.serverCfgs[i])
	if err != nil {
		return err
	}
	c.Servers[i] = n
	return nil
}

// Depth returns the number of redirector levels above the servers
// (1 = manager only).
func (c *Cluster) Depth() int {
	if len(c.Supervisors) == 0 {
		return 1
	}
	levels := 1
	seen := map[string]bool{}
	for _, s := range c.Supervisors {
		var l int
		fmt.Sscanf(s.Name(), "sup%d-", &l)
		if !seen[fmt.Sprint(l)] {
			seen[fmt.Sprint(l)] = true
			levels++
		}
	}
	return levels
}

// Namespace returns a Cluster Name Space daemon over all the cluster's
// data servers (paper footnote 3).
func (c *Cluster) Namespace() *nsd.Daemon {
	addrs := make([]string, len(c.Servers))
	for i, s := range c.Servers {
		addrs[i] = s.DataAddr()
	}
	return nsd.New(c.Net, addrs...)
}

// Proxy is an edge proxy-cache daemon; see internal/pcache.
type Proxy = pcache.Proxy

// ProxyOptions configures StartProxy. Zero values take the pcache
// defaults.
type ProxyOptions struct {
	// Addr is the address the proxy listens on; clients use it as
	// their manager address. Default "pcache:data".
	Addr string
	// BlockSize is the data-cache block granularity.
	BlockSize int
	// CacheBytes caps resident block data.
	CacheBytes int64
	// BlockLifetime ages blocks out via the eviction windows.
	BlockLifetime time.Duration
	// OriginReadahead is the miss-fill window in blocks.
	OriginReadahead int
	// Workers bounds concurrent dispatch per downstream connection.
	Workers int
	// RPCTimeout bounds one origin exchange.
	RPCTimeout time.Duration
	// Tracer records proxy spans when enabled.
	Tracer *obs.Tracer
}

// StartProxy starts an edge proxy cache in front of the cluster's
// managers on the cluster's network. Clients created with
// NewProxyClient (or any client whose Managers name the proxy's
// address) resolve and read through it; repeat opens and hot reads are
// absorbed at the edge.
func (c *Cluster) StartProxy(o ProxyOptions) (*Proxy, error) {
	if o.Addr == "" {
		o.Addr = "pcache:data"
	}
	p := pcache.New(pcache.Config{
		Net:             c.Net,
		Addr:            o.Addr,
		Origins:         c.ManagerAddrs(),
		BlockSize:       o.BlockSize,
		CacheBytes:      o.CacheBytes,
		BlockLifetime:   o.BlockLifetime,
		OriginReadahead: o.OriginReadahead,
		Workers:         o.Workers,
		RPCTimeout:      o.RPCTimeout,
		Tracer:          o.Tracer,
	})
	if err := p.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewProxyClient returns a client aimed at an edge proxy instead of
// the cluster's managers; everything else about the client — walks,
// readahead, refresh recovery — works unmodified. Callers own the
// client and should Close it.
func (c *Cluster) NewProxyClient(p *Proxy) *Client {
	return client.New(client.Config{Net: c.Net, Managers: []string{p.Addr()}})
}
