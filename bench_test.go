// Benchmarks for every experiment in DESIGN.md plus micro-benchmarks of
// the location cache's hot paths.
//
// The BenchmarkE* entries wrap the experiment harness at quick scale —
// each iteration regenerates that experiment's table (printed once with
// -v). cmd/scalla-bench runs the same experiments at full scale with
// formatted output. The Benchmark{Cache,Locate}* entries are
// conventional hot-path micro-benchmarks with allocation counts.
package scalla_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalla"
	"scalla/internal/bitvec"
	"scalla/internal/cache"
	"scalla/internal/experiments"
	"scalla/internal/proto"
	"scalla/internal/vclock"
)

// ------------------------------------------------------ experiments --

func benchExperiment(b *testing.B, fn func(experiments.Scale) experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := fn(experiments.Scale{Quick: true})
		if i == 0 {
			b.Logf("\n%s", tab)
		}
	}
}

func BenchmarkE1TreeLevelLatency(b *testing.B)  { benchExperiment(b, experiments.E1TreeLatency) }
func BenchmarkE2UncachedLookup(b *testing.B)    { benchExperiment(b, experiments.E2UncachedLookup) }
func BenchmarkE3LoadSlope(b *testing.B)         { benchExperiment(b, experiments.E3LoadSlope) }
func BenchmarkE4FibVsPow2(b *testing.B)         { benchExperiment(b, experiments.E4FibVsPow2) }
func BenchmarkE5LookupResize(b *testing.B)      { benchExperiment(b, experiments.E5LookupResize) }
func BenchmarkE6MemoryEquilibrium(b *testing.B) { benchExperiment(b, experiments.E6MemoryEquilibrium) }
func BenchmarkE7Eviction(b *testing.B)          { benchExperiment(b, experiments.E7Eviction) }
func BenchmarkE8Correction(b *testing.B)        { benchExperiment(b, experiments.E8Correction) }
func BenchmarkE9FastResponse(b *testing.B)      { benchExperiment(b, experiments.E9FastResponse) }
func BenchmarkE10RarelyRespond(b *testing.B)    { benchExperiment(b, experiments.E10RarelyRespond) }
func BenchmarkE11Prepare(b *testing.B)          { benchExperiment(b, experiments.E11Prepare) }
func BenchmarkE12Rechain(b *testing.B)          { benchExperiment(b, experiments.E12Rechain) }
func BenchmarkE13Deadline(b *testing.B)         { benchExperiment(b, experiments.E13Deadline) }
func BenchmarkE14Registration(b *testing.B)     { benchExperiment(b, experiments.E14Registration) }
func BenchmarkE15Refresh(b *testing.B)          { benchExperiment(b, experiments.E15RefreshRecovery) }
func BenchmarkE16Qserv(b *testing.B)            { benchExperiment(b, experiments.E16Qserv) }
func BenchmarkE17ScaleSweep(b *testing.B)       { benchExperiment(b, experiments.E17ScaleSweep) }
func BenchmarkE18FanoutAblation(b *testing.B)   { benchExperiment(b, experiments.E18FanoutAblation) }
func BenchmarkE19Throughput(b *testing.B)       { benchExperiment(b, experiments.E19Throughput) }
func BenchmarkE20Selection(b *testing.B)        { benchExperiment(b, experiments.E20SelectionPolicies) }

// ----------------------------------------------------- cache micros --

func benchCache() *cache.Cache {
	return cache.New(cache.Config{
		InitialBuckets: 17711,
		SyncSweep:      true,
		Clock:          vclock.NewFake(),
	})
}

func benchName(i int) string {
	return fmt.Sprintf("/store/data/Run2012A/AOD/%04d/F%08d.root", i%1000, i)
}

// BenchmarkCacheAdd measures location-object insertion, the rate that
// bounds the paper's 1000 objects/second figure (Section III-A2).
func BenchmarkCacheAdd(b *testing.B) {
	c := benchCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(benchName(i), bitvec.Full, 0)
	}
}

// BenchmarkCacheFetchHit measures the cached look-up the paper counts
// inside its <50µs-per-level budget.
func BenchmarkCacheFetchHit(b *testing.B) {
	c := benchCache()
	const n = 100_000
	for i := 0; i < n; i++ {
		c.Add(benchName(i), bitvec.Full, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(benchName(i%n), bitvec.Full, 0)
	}
}

// BenchmarkCacheFetchCorrected measures a fetch that must apply the
// Figure-3 correction (memoized per window).
func BenchmarkCacheFetchCorrected(b *testing.B) {
	c := benchCache()
	const n = 100_000
	for i := 0; i < n; i++ {
		ref, _, _ := c.Add(benchName(i), bitvec.Full, 0)
		c.Update(benchName(i), ref.Hash(), i%32, false, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			// Invalidate every object's epoch once per pass.
			c.ServerConnected(i / n % 64)
		}
		c.Fetch(benchName(i%n), bitvec.Full, 0)
	}
}

// BenchmarkCacheTick measures one eviction window tick (hide one
// window + synchronous sweep) at a steady-state population.
func BenchmarkCacheTick(b *testing.B) {
	c := benchCache()
	const perWindow = 2000
	id := 0
	for w := 0; w < cache.Windows; w++ {
		for k := 0; k < perWindow; k++ {
			c.Add(benchName(id), bitvec.Full, 0)
			id++
		}
		c.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < perWindow; k++ { // refill the expired window
			c.Add(benchName(id), bitvec.Full, 0)
			id++
		}
		b.StartTimer()
		c.Tick()
	}
}

// BenchmarkCacheParallelFetch measures cached look-ups under concurrent
// load with names pre-generated outside the timed loop, so the figure is
// pure Fetch cost. Run with -cpu 1,4,8 to see how resolve throughput
// scales with cores; this is the headline number for the lock-striped
// cache (EXPERIMENTS.md records the before/after table).
func BenchmarkCacheParallelFetch(b *testing.B) {
	c := benchCache()
	const n = 100_000
	names := make([]string, n)
	for i := range names {
		names[i] = benchName(i)
		c.Add(names[i], bitvec.Full, 0)
	}
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Distinct prime-strided start offsets keep workers from
		// marching over the same keys (and shards) in lockstep.
		i := int(seq.Add(1)) * 7919
		for pb.Next() {
			c.Fetch(names[i%n], bitvec.Full, 0)
			i++
		}
	})
}

// -------------------------------------------------------- wire micros --

// benchQuery is a representative hot-path frame: the Query flooded to
// every subordinate on a cache miss. It is pre-boxed as a Message so
// the benchmarks measure the marshal path, not interface conversion.
var benchQuery proto.Message = proto.Query{
	QID:  42,
	Path: "/store/data/Run2012A/AOD/0042/F00000042.root",
	Hash: 0xdeadbeef,
}

// BenchmarkMarshalAlloc measures the allocating proto.Marshal path: one
// fresh buffer per frame.
func BenchmarkMarshalAlloc(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = proto.Marshal(benchQuery)
		}
	})
}

// BenchmarkMarshalReuse measures the pooled MarshalFrame/Release cycle
// that every cmsd/xrd send path now uses: the buffer is recycled, so
// the steady state is allocation-free.
func BenchmarkMarshalReuse(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f := proto.MarshalFrame(benchQuery)
			_ = f.Bytes()
			f.Release()
		}
	})
}

// ---------------------------------------------------- cluster micros --

// BenchmarkLocateCached measures an end-to-end cached resolution through
// one redirector over the in-process transport.
func BenchmarkLocateCached(b *testing.B) {
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    8,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	c := cl.NewClient()
	defer c.Close()
	const nFiles = 64
	paths := make([]string, nFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/store/bench/f%03d", i)
		cl.Store(i%8).Put(paths[i], []byte("x"))
		if _, err := c.Locate(paths[i], false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Locate(paths[i%nFiles], false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocateCachedParallel is the same resolution under concurrent
// clients — the workload behind the paper's low-slope load claim.
func BenchmarkLocateCachedParallel(b *testing.B) {
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    8,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	const nFiles = 64
	paths := make([]string, nFiles)
	warm := cl.NewClient()
	for i := range paths {
		paths[i] = fmt.Sprintf("/store/bench/f%03d", i)
		cl.Store(i%8).Put(paths[i], []byte("x"))
		warm.Locate(paths[i], false)
	}
	warm.Close()
	b.ReportAllocs()

	var mu sync.Mutex
	clients := map[*scalla.Client]bool{}
	defer func() {
		for c := range clients {
			c.Close()
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := cl.NewClient()
		mu.Lock()
		clients[c] = true
		mu.Unlock()
		i := 0
		for pb.Next() {
			c.Locate(paths[i%nFiles], false)
			i++
		}
	})
}

// BenchmarkOpenReadClose measures a full data-plane round trip: resolve,
// open at the server, read 4 KiB, close.
func BenchmarkOpenReadClose(b *testing.B) {
	cl, err := scalla.StartCluster(scalla.Options{
		Servers:    4,
		FullDelay:  250 * time.Millisecond,
		FastPeriod: 25 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	payload := make([]byte, 4096)
	cl.Store(1).Put("/bench/blob", payload)
	c := cl.NewClient()
	defer c.Close()
	if _, err := c.Locate("/bench/blob", false); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := c.Open("/bench/blob")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReadAt(buf, 0); err != nil && err.Error() != "EOF" {
			b.Fatal(err)
		}
		f.Close()
	}
}
