package scalla

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"scalla/internal/backoff"
	"scalla/internal/client"
	"scalla/internal/faults"
	"scalla/internal/obs"
	"scalla/internal/transport"
)

// The chaos suite runs a 64-server tree (fanout 8: two manager
// replicas, 8 supervisors, 74 nodes) on a fault-injecting network and
// asserts the paper's availability story end to end: every resolve
// under randomized drops, crashes, partitions, and slow links completes
// with success or a typed error inside a bounded envelope — no hangs —
// and once a dead server's eviction settles, no client is redirected to
// it. Seed it via CHAOS_SEED; on failure the seed is written to
// chaos-failure-seed.txt so CI can preserve the repro.
//
// Run it with:
//
//	go test -race -run Chaos -v .

// chaosSeed resolves the run's seed (CHAOS_SEED env, default 1).
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q is not an integer: %v", s, err)
	}
	return v
}

// typedChaosErr reports whether err maps to the client's typed error
// set — the only failures the chaos contract allows.
func typedChaosErr(err error) bool {
	for _, want := range []error{
		client.ErrNotExist, client.ErrExist, client.ErrIO, client.ErrTimeout,
		client.ErrNoServer, client.ErrAllReplicasFailed,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// chaosRig bundles the cluster, the fault network, and the shared
// tracer for one chaos run.
type chaosRig struct {
	c      *Cluster
	fnet   *faults.Network
	tracer *obs.Tracer
	cl     *Client
	rng    *rand.Rand

	files map[string][]byte // path -> expected content
	holds map[string][2]int // path -> replica server indexes
}

// readWithRecovery drives one resolve to completion the way the paper
// prescribes (Section III-C1): read, and on a typed failure request a
// cache refresh and retry, until the budget runs out. An untyped error
// or corrupted content fails the test immediately; a typed error at
// budget exhaustion is returned to the caller (legitimate while the
// only replicas are cut off).
func (r *chaosRig) readWithRecovery(t *testing.T, path string, budget time.Duration) error {
	t.Helper()
	deadline := time.Now().Add(budget)
	var lastErr error
	for {
		data, err := r.cl.ReadFile(path)
		if err == nil {
			if !bytes.Equal(data, r.files[path]) {
				t.Fatalf("chaos: %s corrupted: got %q want %q", path, data, r.files[path])
			}
			return nil
		}
		if !typedChaosErr(err) {
			t.Fatalf("chaos: %s failed with untyped error: %v", path, err)
		}
		lastErr = err
		if time.Now().After(deadline) {
			return lastErr
		}
		// The paper's recovery: refresh the stale cache entry and retry.
		r.cl.Relocate(path, false, "")
	}
}

// filesUnder returns a few paths with a replica in supervisor supIdx's
// subtree (server i logs into supervisor i mod 8).
func (r *chaosRig) filesUnder(supIdx int) []string {
	nSups := len(r.c.Supervisors)
	var out []string
	for p, h := range r.holds {
		if h[0]%nSups == supIdx || h[1]%nSups == supIdx {
			out = append(out, p)
			if len(out) == 6 {
				break
			}
		}
	}
	return out
}

func TestChaosClusterSurvivesRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("74-node chaos cluster; skipped with -short")
	}
	seed := chaosSeed(t)
	t.Cleanup(func() {
		if t.Failed() {
			os.WriteFile("chaos-failure-seed.txt", []byte(fmt.Sprintf("%d\n", seed)), 0o644)
			t.Logf("chaos: failing seed %d written to chaos-failure-seed.txt", seed)
		}
	})
	t.Logf("chaos: seed %d", seed)

	tracer := obs.NewTracer(8192, nil)
	tracer.SetEnabled(true)
	fnet := faults.Wrap(transport.NewInProc(transport.InProcConfig{}), faults.Config{
		Seed:   seed,
		Tracer: tracer,
	})

	const (
		nServers   = 64
		nFiles     = 48
		fullDelay  = 500 * time.Millisecond
		pingEvery  = 100 * time.Millisecond
		missed     = 3
		opBudget   = 12 * time.Second // generous ×24 of the full delay: -race on shared CPUs
		settleWait = time.Duration(missed)*pingEvery + fullDelay
	)

	c, err := StartCluster(Options{
		Servers:         nServers,
		ManagerReplicas: 2,
		Fanout:          8,
		Net:             fnet,
		FullDelay:       fullDelay,
		FastPeriod:      50 * time.Millisecond,
		PingInterval:    pingEvery,
		MissedPings:     missed,
		DropDelay:       2 * time.Second,
		ReconnectDelay:  25 * time.Millisecond,
		Tracer:          tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	rig := &chaosRig{
		c: c, fnet: fnet, tracer: tracer,
		rng:   rand.New(rand.NewSource(seed ^ 0x5ca11a)),
		files: make(map[string][]byte),
		holds: make(map[string][2]int),
	}
	rig.cl = client.New(client.Config{
		Net:         fnet,
		Managers:    c.ManagerAddrs(),
		RPCTimeout:  2 * time.Second,
		RPCAttempts: 3,
		WaitBudget:  10 * time.Second,
		Retry:       backoff.Policy{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond},
		RetrySeed:   seed,
	})
	defer rig.cl.Close()

	// Two replicas per file; i and i+7 are never under the same
	// supervisor (server i logs into supervisor i mod 8), so a dead
	// subtree always leaves one replica reachable.
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("/chaos/f%02d", i)
		data := []byte("chaos content of " + p)
		a, b := i%nServers, (i+7)%nServers
		c.Store(a).Put(p, data)
		c.Store(b).Put(p, data)
		rig.files[p] = data
		rig.holds[p] = [2]int{a, b}
	}

	// Warm-up sweep: everything must resolve on a clean network.
	for p := range rig.files {
		if err := rig.readWithRecovery(t, p, opBudget); err != nil {
			t.Fatalf("chaos: warm-up read of %s failed: %v", p, err)
		}
	}

	paths := make([]string, 0, nFiles)
	for p := range rig.files {
		paths = append(paths, p)
	}

	// opsSweep reads a random sample of files under whatever faults are
	// live, timing each op against the no-hang envelope.
	opsSweep := func(round string, n int) (failed int) {
		for k := 0; k < n; k++ {
			p := paths[rig.rng.Intn(len(paths))]
			start := time.Now()
			err := rig.readWithRecovery(t, p, opBudget)
			elapsed := time.Since(start)
			if elapsed > opBudget+fullDelay {
				t.Errorf("chaos[%s]: %s took %v — exceeded the no-hang envelope %v",
					round, p, elapsed, opBudget+fullDelay)
			}
			if err != nil {
				failed++
				t.Logf("chaos[%s]: %s gave up with typed error after %v: %v", round, p, elapsed, err)
			}
		}
		return failed
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		switch round % 6 {
		case 0: // frame-drop storm across every link
			rig.fnet.SetPlan(faults.Plan{Drop: 0.05})
			if f := opsSweep("drop-storm", 12); f > 0 {
				t.Errorf("chaos[drop-storm]: %d reads failed; drops alone must always recover", f)
			}
			rig.fnet.SetPlan(faults.Plan{})

		case 1: // slow links: delayed (and thus reordered) frames
			rig.fnet.SetPlan(faults.Plan{Delay: 0.2, DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond})
			if f := opsSweep("slow-links", 12); f > 0 {
				t.Errorf("chaos[slow-links]: %d reads failed; latency alone must always recover", f)
			}
			rig.fnet.SetPlan(faults.Plan{})

		case 2: // duplicate + reorder on one supervisor's control plane
			supIdx := rig.rng.Intn(len(c.Supervisors))
			sup := c.Supervisors[supIdx]
			rig.fnet.SetLinkPlan(sup.CtlAddr(), faults.Plan{Dup: 0.25, Reorder: 0.25})
			// Refreshes force query floods through the duplicated links
			// (warm reads alone would not touch the control plane), and
			// the sleep lets a few ping/pong rounds through it too.
			for _, p := range rig.filesUnder(supIdx) {
				rig.cl.Relocate(p, false, "")
			}
			time.Sleep(2 * pingEvery)
			if f := opsSweep("ctl-dup", 12); f > 0 {
				t.Errorf("chaos[ctl-dup]: %d reads failed; the control plane is idempotent", f)
			}
			rig.fnet.ClearLinkPlan(sup.CtlAddr())

		case 3: // crash a server, verify eviction, restart it
			victim := rig.rng.Intn(nServers)
			dead := c.Servers[victim].DataAddr()
			rig.fnet.Sever(dead)
			c.CrashServer(victim)
			time.Sleep(settleWait) // let the disconnect and correction settle
			// Zero redirects to dead servers: once eviction settles,
			// no resolve may vector a client at the corpse.
			for _, p := range paths {
				h := rig.holds[p]
				if h[0] != victim && h[1] != victim {
					continue
				}
				addr, lerr := rig.cl.Locate(p, false)
				for retries := 0; lerr != nil && retries < 8; retries++ {
					rig.cl.Relocate(p, false, dead)
					addr, lerr = rig.cl.Locate(p, false)
				}
				if lerr != nil {
					t.Errorf("chaos[crash]: %s unresolvable with one replica dead: %v", p, lerr)
					continue
				}
				if addr == dead {
					t.Errorf("chaos[crash]: %s redirected to dead server %s", p, dead)
				}
			}
			opsSweep("crash", 8)
			rig.fnet.Heal(dead)
			if err := c.RestartServer(victim); err != nil {
				t.Fatalf("chaos[crash]: restart of server %d failed: %v", victim, err)
			}

		case 4: // partition one supervisor subtree, then heal it
			sup := c.Supervisors[rig.rng.Intn(len(c.Supervisors))]
			rig.fnet.Sever(sup.CtlAddr())
			rig.fnet.Sever(sup.DataAddr())
			time.Sleep(settleWait)
			// Every file keeps a replica outside the subtree, so reads
			// must still succeed (refresh retries route around it).
			if f := opsSweep("partition", 12); f > 0 {
				t.Errorf("chaos[partition]: %d reads failed despite a live replica outside the cut", f)
			}
			rig.fnet.Heal(sup.CtlAddr())
			rig.fnet.Heal(sup.DataAddr())

		case 5: // zombie control plane: silent links exercise the
			// missed-heartbeat eviction rather than a clean disconnect
			supIdx := rig.rng.Intn(len(c.Supervisors))
			sup := c.Supervisors[supIdx]
			rig.fnet.SetLinkPlan(sup.CtlAddr(), faults.Plan{Drop: 1})
			// Kick off refreshes so query floods are in flight at the
			// zombie supervisor when heartbeat eviction declares its
			// children dead — the MemberDown re-flood path.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for _, p := range rig.filesUnder(supIdx) {
					rig.cl.Relocate(p, false, "")
				}
			}()
			time.Sleep(settleWait)
			opsSweep("zombie-ctl", 8)
			rig.fnet.ClearLinkPlan(sup.CtlAddr())
			<-done
		}
		// Let reconnections finish before the next round piles on.
		time.Sleep(settleWait)
	}

	// All-replicas-failed surfaces as the typed error with the full
	// tried set — sever both managers and look.
	for _, m := range c.ManagerAddrs() {
		rig.fnet.Sever(m)
	}
	_, err = rig.cl.Locate("/chaos/f00", false)
	if !errors.Is(err, client.ErrAllReplicasFailed) {
		t.Errorf("chaos: with all managers cut, Locate error = %v, want ErrAllReplicasFailed", err)
	}
	var are *client.AllReplicasError
	if errors.As(err, &are) {
		if len(are.Tried) != len(c.ManagerAddrs()) {
			t.Errorf("chaos: AllReplicasError.Tried = %v, want both managers", are.Tried)
		}
	} else if err != nil {
		t.Errorf("chaos: error %v does not carry *AllReplicasError", err)
	}
	for _, m := range c.ManagerAddrs() {
		rig.fnet.Heal(m)
	}

	// Final sweep on a healed network: every file must read back intact.
	deadline := time.Now().Add(2 * time.Minute)
	for _, p := range paths {
		var lastErr error
		for {
			if lastErr = rig.readWithRecovery(t, p, opBudget); lastErr == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("chaos: %s never recovered after healing: %v", p, lastErr)
			}
		}
	}

	// The injections must be visible operator-side: counters and /tracez
	// spans (op "fault") next to the resolutions they disturbed.
	st := fnet.Stats()
	t.Logf("chaos: faults injected: %+v", st)
	if st.Dropped == 0 || st.SeveredConns == 0 {
		t.Errorf("chaos: expected drops and severed conns, got %+v", st)
	}
	if st.Duplicated+st.Reordered == 0 {
		t.Errorf("chaos: the ctl-dup round injected nothing: %+v", st)
	}
	var faultSpans, refloods int
	for _, sp := range tracer.Spans(0) {
		switch sp.Op {
		case "fault":
			faultSpans++
		case "reflood":
			refloods++
		}
	}
	t.Logf("chaos: tracer holds %d fault spans, %d refloods (of %d total)",
		faultSpans, refloods, len(tracer.Spans(0)))
	if faultSpans == 0 {
		t.Error("chaos: no fault spans reached the tracer")
	}
}
