package scalla

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestSupervisorFailureAndRecovery: a supervisor dies, stranding its
// subtree; the cluster keeps serving replicas elsewhere, and when the
// supervisor returns the subtree heals without any intervention —
// Section VI's recoverability claim at the interior of the tree.
func TestSupervisorFailureAndRecovery(t *testing.T) {
	c, err := StartCluster(quickOptions(8, 4)) // 2 supervisors x 4 servers
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Supervisors) != 2 {
		t.Fatalf("supervisors = %d", len(c.Supervisors))
	}

	// One replica in each subtree. Server i sits under supervisor
	// parents[i%2] (round-robin assignment), so even/odd split.
	c.Store(0).Put("/ha/f", []byte("dual homed"))
	c.Store(1).Put("/ha/f", []byte("dual homed"))

	cl := c.NewClient()
	defer cl.Close()
	if _, err := cl.ReadFile("/ha/f"); err != nil {
		t.Fatal(err)
	}

	// Kill supervisor of server 0's subtree (server 0 attaches to
	// Supervisors[0] by construction).
	c.Supervisors[0].Stop()
	deadline := time.Now().Add(10 * time.Second)
	for c.Manager.Core().Table().OnlineVec().Count() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("manager never noticed the supervisor loss")
		}
		time.Sleep(time.Millisecond)
	}

	// The file still resolves through the surviving subtree. The cached
	// location may point at the dead supervisor first; the client's
	// refresh recovery must sort it out.
	got, err := readWithRetry(cl, "/ha/f", 10*time.Second)
	if err != nil || string(got) != "dual homed" {
		t.Fatalf("read during supervisor outage = %q, %v", got, err)
	}
}

func readWithRetry(cl *Client, path string, budget time.Duration) ([]byte, error) {
	deadline := time.Now().Add(budget)
	for {
		data, err := cl.ReadFile(path)
		if err == nil {
			return data, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPropClusterMatchesOracle drives a cluster through random
// placements, reads, writes, and deletions, and checks every observable
// against a plain map oracle. This is the end-to-end consistency
// property: whatever the cache believes, clients always end up reading
// the bytes the oracle says exist (or a definitive not-exist).
func TestPropClusterMatchesOracle(t *testing.T) {
	c, err := StartCluster(quickOptions(4, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl := c.NewClient()
	defer cl.Close()

	oracle := map[string][]byte{}
	nameOf := func(i int) string { return fmt.Sprintf("/prop/f%02d", i%12) }

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 30; op++ {
			name := nameOf(r.Intn(1 << 20))
			switch r.Intn(4) {
			case 0: // write through the client
				payload := make([]byte, 1+r.Intn(2048))
				r.Read(payload)
				if err := cl.WriteFile(name, payload); err != nil {
					t.Logf("WriteFile(%s): %v", name, err)
					return false
				}
				oracle[name] = payload
			case 1: // delete through the client
				err := cl.Unlink(name)
				_, exists := oracle[name]
				if exists && err != nil {
					t.Logf("Unlink(%s) of existing: %v", name, err)
					return false
				}
				if !exists && err == nil {
					// The cluster had it but the oracle didn't — only
					// possible if a previous iteration leaked state.
					t.Logf("Unlink(%s) succeeded for untracked file", name)
					return false
				}
				delete(oracle, name)
			case 2: // read through the client
				data, err := cl.ReadFile(name)
				want, exists := oracle[name]
				if !exists {
					if !errors.Is(err, ErrNotExist) {
						t.Logf("ReadFile(%s) of missing: %v", name, err)
						return false
					}
					continue
				}
				if err != nil && err != io.EOF {
					t.Logf("ReadFile(%s): %v", name, err)
					return false
				}
				if !bytes.Equal(data, want) {
					t.Logf("ReadFile(%s): %d bytes, want %d", name, len(data), len(want))
					return false
				}
			case 3: // stat
				st, err := cl.Stat(name)
				want, exists := oracle[name]
				if exists && (err != nil || st.Size != int64(len(want))) {
					t.Logf("Stat(%s) = %+v, %v; want size %d", name, st, err, len(want))
					return false
				}
				if !exists && !errors.Is(err, ErrNotExist) {
					t.Logf("Stat(%s) of missing: %v", name, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
