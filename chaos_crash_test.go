package scalla

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"scalla/internal/mux"
	"scalla/internal/proto"
	"scalla/internal/store"
	"scalla/internal/transport"
	"scalla/internal/xrd"
)

// Crash-durability suite: a real data-server process is SIGKILLed in
// the middle of a pipelined write stream, then the store directory is
// reopened in-process and audited against the acknowledgment log.
//
// Honesty note (STORAGE.md §crash-recovery): SIGKILL does not drop the
// OS page cache — completed write() calls survive a process kill no
// matter the fsync policy; only power loss (or a crashed kernel) eats
// unsynced data. So under fsync=always the test asserts the hard
// guarantee (every acked byte present and correct), while under
// fsync=never it asserts the recovery envelope: whatever survived is
// an uncorrupted record sequence no longer than what was written, and
// the loss relative to acks is measured and reported.

const (
	crashRecSize = 4096
	crashRecords = 256
)

// crashRecord fills p with record r's deterministic pattern.
func crashRecord(r int, p []byte) {
	for j := range p {
		p[j] = byte(r*31 + j*7)
	}
}

// TestCrashDurabilityHelper is the subprocess body: a disk-backed xrd
// data server on a loopback socket. It is inert unless launched by the
// parent test with SCALLA_CRASH_DIR set.
func TestCrashDurabilityHelper(t *testing.T) {
	dir := os.Getenv("SCALLA_CRASH_DIR")
	if dir == "" {
		t.Skip("crash helper: run by TestChaosCrashDurability")
	}
	st, err := store.Open(store.Config{
		Root:       dir,
		Fsync:      store.FsyncPolicy(os.Getenv("SCALLA_CRASH_FSYNC")),
		FsyncEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("helper: open store: %v", err)
	}
	srv := xrd.New(xrd.Config{Store: st})
	l, err := transport.TCP().Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper: listen: %v", err)
	}
	// The parent scrapes this line for the dial address.
	fmt.Printf("CRASH_HELPER_ADDR %s\n", l.Addr())
	os.Stdout.Sync()
	srv.Serve(l) // until SIGKILL
}

func startCrashHelper(t *testing.T, dir, fsync string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashDurabilityHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SCALLA_CRASH_DIR="+dir,
		"SCALLA_CRASH_FSYNC="+fsync,
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(out)
	deadline := time.After(20 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "CRASH_HELPER_ADDR "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-deadline:
		t.Fatal("crash helper never reported its address")
		return nil, ""
	}
}

// streamAndKill writes records through a pipelined window to the
// helper at addr, SIGKILLs it mid-stream, and returns how many
// records were written (requests sent) and acked (WriteOK received).
func streamAndKill(t *testing.T, cmd *exec.Cmd, addr string) (written, acked int) {
	t.Helper()
	pool := mux.NewPool(transport.TCP(), mux.Options{MaxInFlight: 64})
	defer pool.Close()
	mc, err := pool.Get(addr)
	if err != nil {
		t.Fatalf("dial helper: %v", err)
	}
	reply, err := mc.Call(proto.Open{Path: "/crash/log", Write: true, Create: true}, 10*time.Second)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ok, isOK := reply.(proto.OpenOK)
	if !isOK {
		t.Fatalf("open reply: %#v", reply)
	}

	killAt := crashRecords / 2
	buf := make([]byte, crashRecSize)
	var window []*mux.Call
	reap := func(ca *mux.Call) bool {
		r, err := ca.Wait(10 * time.Second)
		if err != nil {
			return false
		}
		w, isW := r.(proto.WriteOK)
		return isW && int(w.N) == crashRecSize
	}
	for r := 0; r < crashRecords; r++ {
		if r == killAt {
			// Mid-stream, with a window of unacked writes in flight.
			cmd.Process.Signal(syscall.SIGKILL)
		}
		crashRecord(r, buf)
		ca, err := mc.Start(proto.Write{FH: ok.FH, Off: int64(r) * crashRecSize, Bytes: buf})
		if err != nil {
			break // connection died at the kill; the stream is over
		}
		written++
		window = append(window, ca)
		if len(window) >= 8 {
			if !reap(window[0]) {
				window = window[1:]
				break
			}
			acked++
			window = window[1:]
		}
	}
	for _, ca := range window {
		if reap(ca) {
			acked++
		} else {
			break
		}
	}
	cmd.Wait()
	return written, acked
}

// auditCrashDir reopens the store directory the killed process left
// behind and audits each full record against the write stream. The
// server dispatches pipelined writes concurrently, so a later record's
// pwrite can extend the file past an earlier UNACKED record that never
// landed — that record is a hole and legitimately reads as zeros. The
// only illegal state is a record that is neither its exact pattern nor
// an untouched hole: torn or misplaced bytes. Returns how many of the
// first `acked` records are present and bit-exact, plus the total
// record count the surviving size implies.
func auditCrashDir(t *testing.T, dir string, acked int) (survivedAcked, full int) {
	t.Helper()
	st, err := store.Open(store.Config{Root: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st.Close()
	info, err := st.Stat("/crash/log")
	if err != nil {
		t.Fatalf("stat after crash: %v", err)
	}
	full = int(info.Size / crashRecSize)
	want := make([]byte, crashRecSize)
	got := make([]byte, crashRecSize)
	for r := 0; r < full; r++ {
		n, _, err := st.ReadAtInto("/crash/log", int64(r)*crashRecSize, got)
		if err != nil || n != crashRecSize {
			t.Fatalf("record %d: n=%d err=%v", r, n, err)
		}
		crashRecord(r, want)
		matches, zeros := true, true
		for j := range got {
			if got[j] != want[j] {
				matches = false
			}
			if got[j] != 0 {
				zeros = false
			}
			if !matches && !zeros {
				t.Fatalf("record %d is torn at byte %d: %#x (neither pattern nor hole)", r, j, got[j])
			}
		}
		if matches && r < acked {
			survivedAcked++
		}
	}
	return survivedAcked, full
}

// TestChaosCrashDurability covers both ends of the fsync trade-off
// table in STORAGE.md.
func TestChaosCrashDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	t.Run("fsync=always", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "data")
		cmd, addr := startCrashHelper(t, dir, "always")
		written, acked := streamAndKill(t, cmd, addr)
		if acked == 0 {
			t.Fatalf("no writes acked before the kill (written %d)", written)
		}
		survived, full := auditCrashDir(t, dir, acked)
		// The hard guarantee: an acked write under fsync=always is on
		// stable storage before the WriteOK leaves the server.
		if survived < acked {
			t.Fatalf("lost %d acked records after SIGKILL under fsync=always (acked %d, survived %d)",
				acked-survived, acked, survived)
		}
		t.Logf("fsync=always: wrote %d, acked %d, all acked survived (%d records on disk)",
			written, acked, full)
	})
	t.Run("fsync=never", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "data")
		cmd, addr := startCrashHelper(t, dir, "never")
		written, acked := streamAndKill(t, cmd, addr)
		if acked == 0 {
			t.Fatalf("no writes acked before the kill (written %d)", written)
		}
		survived, full := auditCrashDir(t, dir, acked)
		// The recovery envelope: nothing survives that was never
		// written, and what survives is uncorrupted (auditCrashDir).
		// The loss relative to acks is the at-risk window the summary
		// stream reports as dirty_bytes; after SIGKILL (page cache
		// intact) it is usually zero — only power loss widens it.
		if full > written {
			t.Fatalf("more records on disk (%d) than were written (%d)", full, written)
		}
		loss := acked - survived
		t.Logf("fsync=never: wrote %d, acked %d, survived %d of acked (lost %d = %d bytes)",
			written, acked, survived, loss, loss*crashRecSize)
	})
}
