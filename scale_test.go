package scalla

import (
	"fmt"
	"testing"
	"time"
)

// TestLargeClusterFormsAndResolves builds a 512-server tree (fanout 8 →
// 8 + 64 supervisors, depth 3) in one process and verifies that
// formation stays fast (the registration-is-light claim at scale) and
// that resolution reaches an arbitrary leaf through three redirector
// levels.
func TestLargeClusterFormsAndResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node cluster; skipped with -short")
	}
	start := time.Now()
	c, err := StartCluster(Options{
		Servers: 512,
		Fanout:  8,
		// Generous timing: this test shares 2 CPUs with other test
		// packages, and a starved fast-response window turns silence
		// into spurious not-founds at every tree level.
		FullDelay:  time.Second,
		FastPeriod: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	formed := time.Since(start)
	t.Logf("512 servers + %d supervisors formed in %v", len(c.Supervisors), formed)
	if formed > 30*time.Second {
		t.Errorf("formation took %v — registration is supposed to be light", formed)
	}
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
	if got := c.Manager.Core().Table().Count(); got > 8 {
		t.Errorf("manager has %d children at fanout 8", got)
	}

	// Files on scattered leaves, resolved through the full tree.
	cl := c.NewClient()
	defer cl.Close()
	for _, i := range []int{0, 255, 511} {
		p := fmt.Sprintf("/scale/f%03d", i)
		c.Store(i).Put(p, []byte("deep leaf"))
		start := time.Now()
		f, err := cl.Open(p)
		// Under heavy slowdown (race detector) a three-level Have can
		// outlast the shortened full delay and the first verdict is a
		// definitive not-found; the protocol's answer is a refresh
		// retry (Section III-C1).
		for retries := 0; err != nil && retries < 5; retries++ {
			cl.Relocate(p, false, "")
			f, err = cl.Open(p)
		}
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		if f.Server() != c.Servers[i].DataAddr() {
			t.Errorf("%s served by %s, want %s", p, f.Server(), c.Servers[i].DataAddr())
		}
		f.Close()
		t.Logf("cold resolve of %s through 3 levels: %v", p, time.Since(start).Round(time.Microsecond))
	}

	// Warm resolutions across the tree stay fast.
	var total time.Duration
	const m = 50
	for k := 0; k < m; k++ {
		p := fmt.Sprintf("/scale/f%03d", []int{0, 255, 511}[k%3])
		start := time.Now()
		if _, err := cl.Locate(p, false); err != nil {
			t.Fatal(err)
		}
		total += time.Since(start)
	}
	t.Logf("warm resolve mean over %d lookups: %v", m, (total / m).Round(time.Microsecond))
}
