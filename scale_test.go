package scalla

import (
	"fmt"
	"testing"
	"time"
)

// TestLargeClusterFormsAndResolves builds a 512-server tree (fanout 8 →
// 8 + 64 supervisors, depth 3) in one process and verifies that
// formation stays fast (the registration-is-light claim at scale) and
// that resolution reaches an arbitrary leaf through three redirector
// levels.
func TestLargeClusterFormsAndResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node cluster; skipped with -short")
	}
	start := time.Now()
	c, err := StartCluster(Options{
		Servers: 512,
		Fanout:  8,
		// Generous timing: this test shares 2 CPUs with other test
		// packages, and a starved fast-response window turns silence
		// into spurious not-founds at every tree level.
		FullDelay:  time.Second,
		FastPeriod: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	formed := time.Since(start)
	t.Logf("512 servers + %d supervisors formed in %v", len(c.Supervisors), formed)
	if formed > 30*time.Second {
		t.Errorf("formation took %v — registration is supposed to be light", formed)
	}
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
	if got := c.Manager.Core().Table().Count(); got > 8 {
		t.Errorf("manager has %d children at fanout 8", got)
	}

	// Files on scattered leaves, resolved through the full tree.
	cl := c.NewClient()
	defer cl.Close()
	for _, i := range []int{0, 255, 511} {
		p := fmt.Sprintf("/scale/f%03d", i)
		c.Store(i).Put(p, []byte("deep leaf"))
		start := time.Now()
		// Depth-aware deadlines (cmsd.Config.Levels) give the manager a
		// processing window covering the whole three-level Have chain,
		// so the first verdict is authoritative — no refresh-retry loop.
		f, err := cl.Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		if f.Server() != c.Servers[i].DataAddr() {
			t.Errorf("%s served by %s, want %s", p, f.Server(), c.Servers[i].DataAddr())
		}
		f.Close()
		t.Logf("cold resolve of %s through 3 levels: %v", p, time.Since(start).Round(time.Microsecond))
	}

	// Warm resolutions across the tree stay fast.
	var total time.Duration
	const m = 50
	for k := 0; k < m; k++ {
		p := fmt.Sprintf("/scale/f%03d", []int{0, 255, 511}[k%3])
		start := time.Now()
		if _, err := cl.Locate(p, false); err != nil {
			t.Fatal(err)
		}
		total += time.Since(start)
	}
	t.Logf("warm resolve mean over %d lookups: %v", m, (total / m).Round(time.Microsecond))
}

// TestDepth4OverflowLoginConverges is the real-stack smoke for cell
// overflow on a depth-4 tree (manager → supervisor → supervisor →
// server, fanout 2 so the cells fill cheaply): with every cell on the
// manager's path full, a late-joining server's login must be vectored
// down the tree by LoginRedirect — restarting at the manager when it
// hits a full leaf cell — until it converges on the one supervisor with
// a free slot, rather than erroring or redial-looping forever. The
// detsim sweep covers the scheduling interleavings; this covers the
// wire path.
func TestDepth4OverflowLoginConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second overflow walk; skipped with -short")
	}
	// 7 servers at fanout 2: manager → {sup1-0, sup1-1} → 4 leaf
	// supervisors → servers. Every cell is full except sup2-3, which
	// holds one server and has one free slot.
	c, err := StartCluster(Options{
		Servers:        7,
		Fanout:         2,
		FullDelay:      time.Second,
		FastPeriod:     250 * time.Millisecond,
		ReconnectDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := c.Manager.Core().Table().Count(); got != 2 {
		t.Fatalf("manager cell has %d members, want 2 (full)", got)
	}

	srv, err := c.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitFormed(30 * time.Second); err != nil {
		t.Fatalf("overflow login did not converge: %v", err)
	}
	// The newcomer must have landed below the manager, not in it.
	if got := c.Manager.Core().Table().Count(); got != 2 {
		t.Errorf("manager cell grew to %d members; overflow should place deeper", got)
	}
	placed := false
	for _, s := range c.Supervisors {
		for _, m := range s.Core().Table().Members() {
			if m.Name == srv.Name() {
				placed = true
				t.Logf("overflow server %s placed under %s as index %d", srv.Name(), s.Name(), m.Index)
			}
		}
	}
	if !placed {
		t.Fatal("overflow server logged in but is in no supervisor's table")
	}

	// And it must be reachable end to end: a file only it holds resolves
	// through the full tree to its data address.
	p := "/scale/overflow"
	c.Store(7).Put(p, []byte("placed deep"))
	cl := c.NewClient()
	defer cl.Close()
	f, err := cl.Open(p)
	if err != nil {
		t.Fatalf("open %s: %v", p, err)
	}
	defer f.Close()
	if f.Server() != srv.DataAddr() {
		t.Errorf("%s served by %s, want overflow server %s", p, f.Server(), srv.DataAddr())
	}
}
